// Deterministic fast paths of the decision pipeline (paper, Section 4.3):
//   1. Pairwise cover  -> definite YES   (Corollary 1: some row all-undefined)
//   2. Sorted-row test -> definite NO    (Corollary 3: t_{i_j} >= j for all j,
//      which proves a polyhedron witness exists)
// plus the Corollary 2 observation (row all-defined => s covers s_i), which
// the store layer uses to demote existing subscriptions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/conflict_table.hpp"

namespace psc::core {

/// Outcome of the deterministic fast checks.
enum class FastDecision : std::uint8_t {
  kCoveredPairwise,    ///< Corollary 1 fired: a single s_i covers s
  kNotCoveredWitness,  ///< Corollary 3 fired: polyhedron witness must exist
  kInconclusive,       ///< neither corollary applies; run MCS + RSPC
};

struct FastDecisionResult {
  FastDecision decision = FastDecision::kInconclusive;
  /// Row index of the covering subscription when kCoveredPairwise.
  std::optional<std::size_t> covering_row;
};

/// Runs Corollary 1 then Corollary 3 on a built conflict table. O(k log k + k m).
[[nodiscard]] FastDecisionResult run_fast_decisions(const ConflictTable& table);

/// Allocation-free variant: sorts row counts in `counts_scratch` (resized
/// as needed, capacity reused across calls).
[[nodiscard]] FastDecisionResult run_fast_decisions(
    const ConflictTable& table, std::vector<std::size_t>& counts_scratch);

/// Corollary 1 alone: first row with zero defined entries, if any.
[[nodiscard]] std::optional<std::size_t> find_pairwise_cover(const ConflictTable& table);

/// Corollary 2: rows whose every column is defined — subscriptions whose
/// attribute spans s strictly exceeds on all sides. Used for reverse
/// (new-subscription-covers-existing) bookkeeping.
[[nodiscard]] std::vector<std::size_t> find_rows_covered_by_s(const ConflictTable& table);

/// Corollary 3: true iff sorting rows by ascending defined-count t gives
/// t_{(j)} >= j for every 1-based position j, proving non-coverage.
[[nodiscard]] bool sorted_rows_prove_witness(const ConflictTable& table);

}  // namespace psc::core
