#include "core/publication.hpp"

namespace psc::core {

Subscription Publication::as_box() const {
  std::vector<Interval> ranges;
  ranges.reserve(values_.size());
  for (Value v : values_) ranges.push_back(Interval::point(v));
  return Subscription(std::move(ranges));
}

std::ostream& operator<<(std::ostream& out, const Publication& pub) {
  out << "p" << pub.id() << ": (";
  for (std::size_t attr = 0; attr < pub.attribute_count(); ++attr) {
    if (attr > 0) out << ", ";
    out << pub.value(attr);
  }
  return out << ")";
}

}  // namespace psc::core
