#include "core/engine.hpp"

#include <cmath>
#include <stdexcept>

#include "core/fast_decisions.hpp"

namespace psc::core {

std::string_view to_string(DecisionPath path) noexcept {
  switch (path) {
    case DecisionPath::kEmptySet: return "empty-set";
    case DecisionPath::kPairwiseCover: return "pairwise-cover";
    case DecisionPath::kPolyhedronWitness: return "polyhedron-witness";
    case DecisionPath::kMcsEmpty: return "mcs-empty";
    case DecisionPath::kRspcWitness: return "rspc-witness";
    case DecisionPath::kRspcProbabilistic: return "rspc-probabilistic";
  }
  return "unknown";
}

void validate(const EngineConfig& config) {
  if (!(config.delta > 0.0 && config.delta < 1.0)) {
    throw std::invalid_argument("EngineConfig: delta must be in (0, 1)");
  }
  if (config.max_iterations == 0) {
    throw std::invalid_argument("EngineConfig: max_iterations must be > 0");
  }
  if (config.grid_spacing < 0.0) {
    throw std::invalid_argument("EngineConfig: grid_spacing must be >= 0");
  }
}

SubsumptionEngine::SubsumptionEngine(EngineConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  validate(config_);
}

void SubsumptionEngine::set_config(const EngineConfig& config) {
  validate(config);
  config_ = config;
}

SubsumptionResult SubsumptionEngine::check(const Subscription& s,
                                           std::span<const Subscription> set) {
  ws_.input.clear();
  ws_.input.reserve(set.size());
  for (const Subscription& si : set) ws_.input.push_back(&si);
  return check(s, std::span<const Subscription* const>(ws_.input));
}

SubsumptionResult SubsumptionEngine::check(
    const Subscription& s, std::span<const Subscription* const> set) {
  SubsumptionResult result;
  result.original_set_size = set.size();
  result.reduced_set_size = set.size();

  // Prefilter: a candidate sharing no positive-measure region with s
  // cannot contribute to covering s; dropping it up front skips its
  // conflict-table row and all MCS work on it. Indices are remembered so
  // diagnostics still refer to the caller's set.
  ws_.filtered.clear();
  ws_.original_index.clear();
  if (config_.prefilter_intersecting) {
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (s.overlaps_interior(*set[i]) || set[i]->covers(s)) {
        ws_.filtered.push_back(set[i]);
        ws_.original_index.push_back(i);
      }
    }
    set = ws_.filtered;
    result.reduced_set_size = set.size();
  }

  if (set.empty()) {
    result.covered = false;
    result.path = config_.prefilter_intersecting && result.original_set_size > 0
                      ? DecisionPath::kMcsEmpty
                      : DecisionPath::kEmptySet;
    return result;
  }

  ws_.table.rebuild(s, set);
  const ConflictTable& table = ws_.table;

  if (config_.use_fast_decisions) {
    const FastDecisionResult fast = run_fast_decisions(table, ws_.sorted_counts);
    if (fast.decision == FastDecision::kCoveredPairwise) {
      result.covered = true;
      result.path = DecisionPath::kPairwiseCover;
      result.covering_index = config_.prefilter_intersecting
                                  ? ws_.original_index[*fast.covering_row]
                                  : *fast.covering_row;
      return result;
    }
    if (fast.decision == FastDecision::kNotCoveredWitness) {
      result.covered = false;
      result.path = DecisionPath::kPolyhedronWitness;
      return result;
    }
  }

  // Work on the (possibly) reduced candidate set. The reduced view is
  // materialized so RSPC scans a dense pointer array, and the estimate
  // table is rebuilt only when MCS actually removed rows.
  std::span<const Subscription* const> rspc_set = set;
  const ConflictTable* estimate_table = &table;
  if (config_.use_mcs) {
    run_mcs(table, ws_.mcs, ws_.alive);
    result.mcs_ran = true;
    result.reduced_set_size = ws_.mcs.kept.size();
    if (ws_.mcs.empty()) {
      result.covered = false;
      result.path = DecisionPath::kMcsEmpty;
      return result;
    }
    if (ws_.mcs.kept.size() < set.size()) {
      ws_.reduced.clear();
      for (std::size_t index : ws_.mcs.kept) ws_.reduced.push_back(set[index]);
      rspc_set = ws_.reduced;
      // rho_w / d are estimated on the *reduced* set: fewer rows can only
      // widen the per-attribute minimum gaps, which is exactly the effect
      // the paper's Figures 7 and 9 measure.
      ws_.reduced_table.rebuild(s, rspc_set);
      estimate_table = &ws_.reduced_table;
    }
  }

  const WitnessEstimate estimate =
      estimate_witness_probability(*estimate_table, config_.grid_spacing);
  result.rho_w = estimate.rho_w;
  result.theoretical_d =
      estimate.rho_w > 0.0
          ? theoretical_trials(estimate.rho_w, config_.delta)
          : std::numeric_limits<double>::infinity();
  result.trial_budget =
      capped_trials(estimate.rho_w, config_.delta, config_.max_iterations);

  const RspcResult rspc =
      run_rspc(s, rspc_set, result.trial_budget, rng_, ws_.point);
  result.iterations = rspc.iterations;
  if (!rspc.covered) {
    result.covered = false;
    result.path = DecisionPath::kRspcWitness;
    result.witness = rspc.witness;
    return result;
  }
  result.covered = true;
  result.is_definite = false;
  result.path = DecisionPath::kRspcProbabilistic;
  return result;
}

}  // namespace psc::core
