#include "core/engine.hpp"

#include <cmath>
#include <stdexcept>

#include "core/fast_decisions.hpp"

namespace psc::core {

std::string_view to_string(DecisionPath path) noexcept {
  switch (path) {
    case DecisionPath::kEmptySet: return "empty-set";
    case DecisionPath::kPairwiseCover: return "pairwise-cover";
    case DecisionPath::kPolyhedronWitness: return "polyhedron-witness";
    case DecisionPath::kMcsEmpty: return "mcs-empty";
    case DecisionPath::kRspcWitness: return "rspc-witness";
    case DecisionPath::kRspcProbabilistic: return "rspc-probabilistic";
  }
  return "unknown";
}

void validate(const EngineConfig& config) {
  if (!(config.delta > 0.0 && config.delta < 1.0)) {
    throw std::invalid_argument("EngineConfig: delta must be in (0, 1)");
  }
  if (config.max_iterations == 0) {
    throw std::invalid_argument("EngineConfig: max_iterations must be > 0");
  }
  if (config.grid_spacing < 0.0) {
    throw std::invalid_argument("EngineConfig: grid_spacing must be >= 0");
  }
}

SubsumptionEngine::SubsumptionEngine(EngineConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  validate(config_);
}

void SubsumptionEngine::set_config(const EngineConfig& config) {
  validate(config);
  config_ = config;
}

SubsumptionResult SubsumptionEngine::check(const Subscription& s,
                                           std::span<const Subscription> set) {
  SubsumptionResult result;
  result.original_set_size = set.size();
  result.reduced_set_size = set.size();

  // Prefilter: a candidate sharing no positive-measure region with s
  // cannot contribute to covering s; dropping it up front skips its
  // conflict-table row and all MCS work on it. Indices are remembered so
  // diagnostics still refer to the caller's set.
  std::vector<Subscription> filtered;
  std::vector<std::size_t> original_index;
  if (config_.prefilter_intersecting) {
    filtered.reserve(set.size());
    original_index.reserve(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (s.overlaps_interior(set[i]) || set[i].covers(s)) {
        filtered.push_back(set[i]);
        original_index.push_back(i);
      }
    }
    set = filtered;
    result.reduced_set_size = set.size();
  }

  if (set.empty()) {
    result.covered = false;
    result.path = config_.prefilter_intersecting && result.original_set_size > 0
                      ? DecisionPath::kMcsEmpty
                      : DecisionPath::kEmptySet;
    return result;
  }

  const ConflictTable table(s, set);

  if (config_.use_fast_decisions) {
    const FastDecisionResult fast = run_fast_decisions(table);
    if (fast.decision == FastDecision::kCoveredPairwise) {
      result.covered = true;
      result.path = DecisionPath::kPairwiseCover;
      result.covering_index = config_.prefilter_intersecting
                                  ? original_index[*fast.covering_row]
                                  : *fast.covering_row;
      return result;
    }
    if (fast.decision == FastDecision::kNotCoveredWitness) {
      result.covered = false;
      result.path = DecisionPath::kPolyhedronWitness;
      return result;
    }
  }

  // Work on the (possibly) reduced candidate set. The reduced view is
  // materialized so RSPC scans a dense array.
  std::vector<Subscription> reduced;
  const Subscription* candidates = set.data();
  std::size_t candidate_count = set.size();
  if (config_.use_mcs) {
    const McsResult mcs = run_mcs(table);
    result.mcs_ran = true;
    result.reduced_set_size = mcs.kept.size();
    if (mcs.empty()) {
      result.covered = false;
      result.path = DecisionPath::kMcsEmpty;
      return result;
    }
    reduced.reserve(mcs.kept.size());
    for (std::size_t index : mcs.kept) reduced.push_back(set[index]);
    candidates = reduced.data();
    candidate_count = reduced.size();
  }

  // rho_w / d are estimated on the *reduced* set: fewer rows can only widen
  // the per-attribute minimum gaps, which is exactly the effect the paper's
  // Figures 7 and 9 measure.
  const std::span<const Subscription> rspc_set(candidates, candidate_count);
  const ConflictTable reduced_table =
      config_.use_mcs ? ConflictTable(s, rspc_set) : table;
  const WitnessEstimate estimate =
      estimate_witness_probability(reduced_table, config_.grid_spacing);
  result.rho_w = estimate.rho_w;
  result.theoretical_d =
      estimate.rho_w > 0.0
          ? theoretical_trials(estimate.rho_w, config_.delta)
          : std::numeric_limits<double>::infinity();
  result.trial_budget =
      capped_trials(estimate.rho_w, config_.delta, config_.max_iterations);

  const RspcResult rspc = run_rspc(s, rspc_set, result.trial_budget, rng_);
  result.iterations = rspc.iterations;
  if (!rspc.covered) {
    result.covered = false;
    result.path = DecisionPath::kRspcWitness;
    result.witness = rspc.witness;
    return result;
  }
  result.covered = true;
  result.is_definite = false;
  result.path = DecisionPath::kRspcProbabilistic;
  return result;
}

}  // namespace psc::core
