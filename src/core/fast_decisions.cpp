#include "core/fast_decisions.hpp"

#include <algorithm>

namespace psc::core {

std::optional<std::size_t> find_pairwise_cover(const ConflictTable& table) {
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    if (table.row_all_undefined(row)) return row;
  }
  return std::nullopt;
}

std::vector<std::size_t> find_rows_covered_by_s(const ConflictTable& table) {
  std::vector<std::size_t> rows;
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    if (table.row_all_defined(row)) rows.push_back(row);
  }
  return rows;
}

namespace {

bool sorted_rows_prove_witness_scratch(const ConflictTable& table,
                                       std::vector<std::size_t>& counts) {
  const std::size_t k = table.row_count();
  if (k == 0) return true;  // empty union covers nothing non-empty
  counts.resize(k);
  for (std::size_t row = 0; row < k; ++row) counts[row] = table.defined_count(row);
  std::sort(counts.begin(), counts.end());
  for (std::size_t j = 0; j < k; ++j) {
    // 1-based position j+1 must not exceed t at that position.
    if (counts[j] < j + 1) return false;
  }
  return true;
}

}  // namespace

bool sorted_rows_prove_witness(const ConflictTable& table) {
  std::vector<std::size_t> counts;
  return sorted_rows_prove_witness_scratch(table, counts);
}

FastDecisionResult run_fast_decisions(const ConflictTable& table,
                                      std::vector<std::size_t>& counts_scratch) {
  FastDecisionResult result;
  if (auto row = find_pairwise_cover(table)) {
    result.decision = FastDecision::kCoveredPairwise;
    result.covering_row = row;
    return result;
  }
  if (sorted_rows_prove_witness_scratch(table, counts_scratch)) {
    result.decision = FastDecision::kNotCoveredWitness;
    return result;
  }
  return result;
}

FastDecisionResult run_fast_decisions(const ConflictTable& table) {
  std::vector<std::size_t> counts;
  return run_fast_decisions(table, counts);
}

}  // namespace psc::core
