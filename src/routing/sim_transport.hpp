// SimTransport — the discrete-event implementation of the Transport seam.
//
// Perfect wire (link.enabled == false): every frame is one EventQueue entry
// at now + latency, delivered straight into the frame handler. This is the
// exact schedule_in call the pre-seam BrokerNetwork send sites issued, in
// the same order, so event sequence numbers — and with them every FIFO
// tie-break the deterministic replay contract leans on — are unchanged.
//
// Faulty wire (link.enabled == true): frames route through the go-back-N
// LinkChannels protocol (retransmits, cumulative acks, escalation into the
// membership repair path), which itself schedules on the same queue.
//
// The sim-only control surface (reset_link on membership churn, scripted
// burst windows, in-flight accounting) stays on the concrete type;
// BrokerNetwork owns a SimTransport and hands the base interface to code
// that only needs to send.
#pragma once

#include <memory>
#include <vector>

#include "routing/link_channel.hpp"
#include "routing/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace psc::routing {

class SimTransport final : public Transport {
 public:
  /// `escalate` is forwarded to LinkChannels (retry-cap exhaustion); only
  /// ever invoked when `link.enabled`.
  SimTransport(sim::EventQueue& queue, sim::Metrics& metrics,
               const LinkConfig& link, sim::SimTime latency,
               std::uint64_t seed, LinkChannels::EscalateFn escalate);

  void set_frame_handler(FrameHandler handler) override;
  void send_frame(BrokerId from, BrokerId to,
                  const wire::Announcement& msg) override;
  [[nodiscard]] sim::SimTime now() const override { return queue_.now(); }
  TimerId schedule_timer_at(sim::SimTime at, std::function<void()> fn) override {
    return queue_.schedule_cancelable_at(at, std::move(fn));
  }
  void cancel_timer(TimerId id) override { queue_.cancel(id); }

  // --- sim-only surface --------------------------------------------------

  [[nodiscard]] bool lossy() const noexcept { return link_.enabled; }

  /// Resets both directions of (a, b) in the link protocol (fail / heal /
  /// crash / attach). No-op on the perfect wire.
  void reset_link(BrokerId a, BrokerId b);

  /// Installs scripted burst-loss windows; no-op on the perfect wire.
  void set_bursts(std::vector<LinkChannels::BurstWindow> bursts);

  /// Frames queued in the link protocol (zero on the perfect wire).
  [[nodiscard]] std::size_t in_flight() const noexcept;

 private:
  sim::EventQueue& queue_;
  sim::SimTime latency_;
  LinkConfig link_;
  FrameHandler handler_;
  /// Present iff link_.enabled: the reliable protocol over the faulty wire.
  std::unique_ptr<LinkChannels> channels_;
};

}  // namespace psc::routing
