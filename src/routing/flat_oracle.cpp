#include "routing/flat_oracle.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

void FlatOracle::subscribe(BrokerId broker, const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("FlatOracle::subscribe: id must be non-zero");
  }
  if (subs_.count(sub.id()) > 0) {
    throw std::invalid_argument("FlatOracle::subscribe: duplicate id");
  }
  subs_.emplace(sub.id(), Entry{broker, sub, std::nullopt});
}

void FlatOracle::subscribe_with_ttl(BrokerId broker, const Subscription& sub,
                                    sim::SimTime ttl) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: bad id");
  }
  if (subs_.count(sub.id()) > 0) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: duplicate id");
  }
  if (!(ttl > 0)) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: ttl <= 0");
  }
  subs_.emplace(sub.id(), Entry{broker, sub, now_ + ttl});
}

void FlatOracle::unsubscribe(BrokerId broker, SubscriptionId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end() || it->second.home != broker) {
    throw std::invalid_argument("FlatOracle::unsubscribe: unknown id");
  }
  subs_.erase(it);
}

void FlatOracle::expire_due() {
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.expiry && *it->second.expiry <= now_) {
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlatOracle::advance_time(sim::SimTime horizon) {
  if (horizon > now_) now_ = horizon;
  expire_due();
}

std::vector<SubscriptionId> FlatOracle::publish(const Publication& pub) {
  std::vector<SubscriptionId> delivered;
  for (const auto& [id, entry] : subs_) {
    if (pub.matches(entry.sub)) delivered.push_back(id);
  }
  std::sort(delivered.begin(), delivered.end());
  return delivered;
}

}  // namespace psc::routing
