#include "routing/flat_oracle.hpp"

#include <stdexcept>

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

namespace {

store::StoreConfig oracle_store_config() {
  // Ground-truth configuration: no coverage (every subscription stays
  // individually matchable) and no interval index — matching must stay a
  // direct flat box scan, independent of the structures under test.
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kNone;
  config.demote_covered_actives = false;
  config.use_index = false;
  return config;
}

}  // namespace

FlatOracle::FlatOracle() : store_(oracle_store_config(), /*seed=*/0) {}

void FlatOracle::subscribe(BrokerId broker, const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("FlatOracle::subscribe: id must be non-zero");
  }
  if (meta_.count(sub.id()) > 0) {
    throw std::invalid_argument("FlatOracle::subscribe: duplicate id");
  }
  meta_.emplace(sub.id(), Meta{broker, std::nullopt});
  (void)store_.insert(sub);
}

void FlatOracle::subscribe_with_ttl(BrokerId broker, const Subscription& sub,
                                    sim::SimTime ttl) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: bad id");
  }
  if (meta_.count(sub.id()) > 0) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: duplicate id");
  }
  if (!(ttl > 0)) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: ttl <= 0");
  }
  meta_.emplace(sub.id(), Meta{broker, now_ + ttl});
  (void)store_.insert(sub);
}

void FlatOracle::unsubscribe(BrokerId broker, SubscriptionId id) {
  const auto it = meta_.find(id);
  if (it == meta_.end() || it->second.home != broker) {
    throw std::invalid_argument("FlatOracle::unsubscribe: unknown id");
  }
  meta_.erase(it);
  (void)store_.erase(id);
}

void FlatOracle::expire_due() {
  for (auto it = meta_.begin(); it != meta_.end();) {
    if (it->second.expiry && *it->second.expiry <= now_) {
      (void)store_.erase(it->first);
      it = meta_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlatOracle::advance_time(sim::SimTime horizon) {
  if (horizon > now_) now_ = horizon;
  expire_due();
}

void FlatOracle::publish(const Publication& pub,
                         std::vector<SubscriptionId>& out) {
  out.clear();
  // kNone keeps every subscription active, so match_active is the full
  // delivered set; the store appends sorted ascending.
  store_.match_active(pub, out);
}

std::vector<SubscriptionId> FlatOracle::publish(const Publication& pub) {
  std::vector<SubscriptionId> delivered;
  publish(pub, delivered);
  return delivered;
}

}  // namespace psc::routing
