#include "routing/flat_oracle.hpp"

#include <stdexcept>
#include <string>

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

namespace {

store::StoreConfig oracle_store_config() {
  // Ground-truth configuration: no coverage (every subscription stays
  // individually matchable) and no interval index — matching must stay a
  // direct flat box scan, independent of the structures under test.
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kNone;
  config.demote_covered_actives = false;
  config.use_index = false;
  return config;
}

}  // namespace

FlatOracle::FlatOracle() : store_(oracle_store_config(), /*seed=*/0) {}

void FlatOracle::require_alive(BrokerId broker, const char* what) const {
  if (link_state_ && !link_state_->is_alive(broker)) {
    throw std::invalid_argument(std::string("FlatOracle::") + what +
                                ": broker is not alive");
  }
}

void FlatOracle::subscribe(BrokerId broker, const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("FlatOracle::subscribe: id must be non-zero");
  }
  if (meta_.count(sub.id()) > 0) {
    throw std::invalid_argument("FlatOracle::subscribe: duplicate id");
  }
  require_alive(broker, "subscribe");
  meta_.emplace(sub.id(), Meta{broker, std::nullopt});
  (void)store_.insert(sub);
}

void FlatOracle::subscribe_with_ttl(BrokerId broker, const Subscription& sub,
                                    sim::SimTime ttl) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: bad id");
  }
  if (meta_.count(sub.id()) > 0) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: duplicate id");
  }
  if (!(ttl > 0)) {
    throw std::invalid_argument("FlatOracle::subscribe_with_ttl: ttl <= 0");
  }
  require_alive(broker, "subscribe_with_ttl");
  meta_.emplace(sub.id(), Meta{broker, now_ + ttl});
  (void)store_.insert(sub);
}

void FlatOracle::unsubscribe(BrokerId broker, SubscriptionId id) {
  const auto it = meta_.find(id);
  if (it == meta_.end() || it->second.home != broker) {
    throw std::invalid_argument("FlatOracle::unsubscribe: unknown id");
  }
  meta_.erase(it);
  (void)store_.erase(id);
}

void FlatOracle::expire_due() {
  for (auto it = meta_.begin(); it != meta_.end();) {
    if (it->second.expiry && *it->second.expiry <= now_) {
      (void)store_.erase(it->first);
      it = meta_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlatOracle::advance_time(sim::SimTime horizon) {
  if (horizon > now_) now_ = horizon;
  expire_due();
}

void FlatOracle::publish(const Publication& pub,
                         std::vector<SubscriptionId>& out) {
  out.clear();
  // kNone keeps every subscription active, so match_active is the full
  // delivered set; the store appends sorted ascending.
  store_.match_active(pub, out);
}

std::vector<SubscriptionId> FlatOracle::publish(const Publication& pub) {
  std::vector<SubscriptionId> delivered;
  publish(pub, delivered);
  return delivered;
}

// --- membership mirroring ------------------------------------------------

void FlatOracle::enable_membership(const MembershipUniverse& universe) {
  if (link_state_) {
    throw std::logic_error("FlatOracle::enable_membership: already engaged");
  }
  link_state_.emplace(universe);
}

const LinkState& FlatOracle::link_state() const {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::link_state: membership not engaged");
  }
  return *link_state_;
}

BrokerId FlatOracle::add_peer(BrokerId attach_to) {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::add_peer: membership not engaged");
  }
  const BrokerId id = link_state_->add_broker();
  link_state_->add_link(attach_to, id);
  return id;
}

void FlatOracle::remove_peer(BrokerId broker) {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::remove_peer: membership not engaged");
  }
  require_alive(broker, "remove_peer");
  // Graceful departure takes its clients with it, same as the network.
  for (auto it = meta_.begin(); it != meta_.end();) {
    if (it->second.home == broker) {
      (void)store_.erase(it->first);
      it = meta_.erase(it);
    } else {
      ++it;
    }
  }
  (void)link_state_->remove_peer(broker);
}

void FlatOracle::crash_peer(BrokerId broker) {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::crash_peer: membership not engaged");
  }
  require_alive(broker, "crash_peer");
  // Crash keeps the registry entries: the clients are unaware, and the
  // component filter makes their subscriptions unreachable until a
  // replacement arrives (or TTL takes them).
  (void)link_state_->crash_peer(broker);
}

void FlatOracle::replace_peer(BrokerId broker) {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::replace_peer: membership not engaged");
  }
  (void)link_state_->replace_peer(broker);
}

void FlatOracle::fail_link(BrokerId a, BrokerId b) {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::fail_link: membership not engaged");
  }
  link_state_->fail_link(a, b);
}

void FlatOracle::heal_link(BrokerId a, BrokerId b) {
  if (!link_state_) {
    throw std::logic_error("FlatOracle::heal_link: membership not engaged");
  }
  link_state_->heal_link(a, b);
}

void FlatOracle::publish(BrokerId from, const Publication& pub,
                         std::vector<SubscriptionId>& out) {
  if (!link_state_) {
    publish(pub, out);
    return;
  }
  require_alive(from, "publish");
  scratch_.clear();
  store_.match_active(pub, scratch_);
  out.clear();
  for (const SubscriptionId sid : scratch_) {
    const Meta& meta = meta_.at(sid);
    if (!link_state_->is_alive(meta.home)) continue;
    if (!link_state_->same_component(from, meta.home)) continue;
    out.push_back(sid);
  }
}

}  // namespace psc::routing
