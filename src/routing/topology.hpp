// Topology — a named, uniformly-buildable overlay descriptor so tests and
// benches enumerate the whole scenario family (paper Figure 1, the Section 5
// chain, and the generated tree/grid/regular overlays) with one loop
// instead of hand-wiring each shape.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "routing/broker_network.hpp"

namespace psc::routing {

/// One overlay shape: a display name, its broker count, and a builder that
/// instantiates it with the caller's NetworkConfig. Builders are pure —
/// calling build twice yields two independent, identically-wired networks.
struct Topology {
  std::string name;
  std::size_t brokers = 0;
  std::function<BrokerNetwork(NetworkConfig)> build;
};

/// The five-shape standard family every scenario-diversity test and the
/// churn-soak bench run against:
///   figure1          — the paper's 9-broker example overlay
///   chain8           — 8-broker chain (Section 5 analysis shape)
///   random_tree32    — 32-broker random attachment tree (hubby, deep)
///   grid6x6          — 36 brokers on a grid, comb-spanning-tree routed
///   random_regular24 — BFS tree of a random 3-regular graph on 24 brokers
/// `seed` feeds the randomized generators; every descriptor is
/// deterministic per seed.
[[nodiscard]] std::vector<Topology> standard_topologies(std::uint64_t seed = 2006);

}  // namespace psc::routing
