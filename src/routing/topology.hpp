// Topology — a named, uniformly-buildable overlay descriptor so tests and
// benches enumerate the whole scenario family (paper Figure 1, the Section 5
// chain, and the generated tree/grid/regular overlays) with one loop
// instead of hand-wiring each shape.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "routing/broker_network.hpp"

namespace psc::routing {

/// One overlay shape: a display name, its broker count, and a builder that
/// instantiates it with the caller's NetworkConfig. Builders are pure —
/// calling build twice yields two independent, identically-wired networks.
struct Topology {
  std::string name;
  std::size_t brokers = 0;
  std::function<BrokerNetwork(NetworkConfig)> build;
};

/// The five-shape standard family every scenario-diversity test and the
/// churn-soak bench run against:
///   figure1          — the paper's 9-broker example overlay
///   chain8           — 8-broker chain (Section 5 analysis shape)
///   random_tree32    — 32-broker random attachment tree (hubby, deep)
///   grid6x6          — 36 brokers on a grid, comb-spanning-tree routed
///   random_regular24 — BFS tree of a random 3-regular graph on 24 brokers
/// `seed` feeds the randomized generators; every descriptor is
/// deterministic per seed.
[[nodiscard]] std::vector<Topology> standard_topologies(std::uint64_t seed = 2006);

/// A membership-soak shape: a scalable overlay plus its provisioned-but-
/// down standby bridges. The live links always form a spanning tree (the
/// forest invariant); the standby links express the cyclic part of a
/// ring/mesh universe as healable bridges, so partitions can ROTATE which
/// bridge is up instead of always restoring the failed link.
struct MembershipTopology {
  std::string name;
  std::size_t brokers = 0;  ///< actual count (shape-rounded from requested n)
  std::function<BrokerNetwork(NetworkConfig)> build;
  std::vector<std::pair<BrokerId, BrokerId>> standby;

  /// The universe a membership trace is generated against: the built
  /// network's live links plus this shape's standby bridges.
  [[nodiscard]] MembershipUniverse universe(const BrokerNetwork& net) const;
};

/// The membership-soak family, scaled to roughly `n` brokers each:
///   figure1_tiled   — ceil(n/9) copies of Figure 1, chained backbone-to-
///                     backbone (B4 to B4)
///   chain           — open daisy-chain of n brokers
///   random_tree     — n-broker random attachment tree
///   grid            — ~sqrt(n) x ~sqrt(n) comb-routed grid
///   random_regular  — BFS tree of a random 3-regular graph (n rounded even)
///   ring            — chain plus a standby bridge closing the cycle
///   clustered_mesh  — three star clusters with chained heads plus a
///                     standby bridge closing the head ring
/// Requires n >= 12 (the smallest meaningful clustered shape).
[[nodiscard]] std::vector<MembershipTopology> membership_topologies(
    std::size_t n, std::uint64_t seed = 2006);

}  // namespace psc::routing
