// PublishPipeline — the broker's staged publish runtime.
//
// The sequential publish path (Broker::handle_publication) matches a
// publication against the whole routed set, sorts the matched ids, and
// looks every id up in the routing table to classify it (local delivery vs
// which neighbour to forward to). At 100k routed subscriptions that
// classification loop — a comparison sort of ~10k ids plus ~10k flat-map
// probes into cache-hostile RouteEntry values — costs roughly 2/3 of the
// publish (measured in bench/perf_gate's broker fixture).
//
// The pipeline removes the classification loop structurally. It consumes
// the broker's origin-partitioned publish lanes (Broker::PublishLanes):
//
//             ┌ decode ┐   ┌─ match ─┐   ┌ route ┐   ┌ encode ┐
//   frames ──▶│ caller │──▶│ workers │──▶│ caller│──▶│ caller │──▶ routes
//             └────────┘   └─────────┘   └───────┘   └────────┘
//                 ▲   slot ring (SPSC) ▲   ▲ completion ring (SPSC)
//
//   * decode: wire frames → publications (run_encoded only; run() takes
//     decoded publications). Runs on the submit side of the slot ring, so
//     it overlaps with the match stage of earlier slots.
//   * match: each worker owns a fixed subset of lanes (local-lane shards +
//     neighbour lanes, round-robin) and stabs its lanes for every
//     publication of the slot. Because a lane is touched by exactly one
//     worker, per-store query scratch needs no locks.
//   * route: the caller merges the local-lane matches, radix-sorts them
//     once (util/radix_sort.hpp), and orders destinations by each
//     neighbour lane's minimum matching id — which IS the sequential
//     path's first-match order over ascending ids.
//   * encode: routes → wire frames (run_encoded only).
//
// Cross-publication batching: publications move through the stages in
// slots of `batch_size`, with up to `queue_depth` slots in flight. Slot
// buffers, sort scratch, and the caller's route vectors are all reused, so
// a warm steady-state batch allocates nothing on the match/route path.
//
// Determinism contract (property-tested in tests/pipeline_test.cpp,
// including under TSan): for every publication, the produced
// PublicationRoute is decision-for-decision identical — same
// local_matches, same destinations, same ORDER — to sequential
// Broker::handle_publication, for every worker count, queue depth, batch
// size, and lane shard count. Matching never mutates routing state, so
// pipelined batches interleave with membership events exactly like
// sequential calls (tests/pipeline_churn_test.cpp).
//
// Worker sizing: `workers == 0` runs every stage inline on the caller
// thread — the configuration a one-core host gets from kAuto, where the
// pipeline's win is the lane/radix route stage and cross-publication
// batching, not parallelism. Threads are started lazily on first use and
// parked on their rings between runs.
//
// Concurrency contract: a PublishPipeline is externally single-threaded
// (one run() at a time), like the Broker it drives. One pipeline may
// serve many brokers (the BrokerNetwork shares one across all of its
// brokers); it retargets per call.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "exec/pipeline.hpp"
#include "exec/ring_queue.hpp"
#include "routing/broker.hpp"
#include "wire/byte_buffer.hpp"

namespace psc::routing {

struct PublishPipelineOptions {
  /// kAuto sizes match workers from the hardware (cores - 1, capped at 4;
  /// 0 on a single-core host). 0 = inline: every stage on the caller.
  static constexpr std::size_t kAuto = static_cast<std::size_t>(-1);
  std::size_t workers = kAuto;
  /// Slots in flight between the submit and completion sides. More depth
  /// hides per-slot latency jitter; memory grows linearly. Power of two
  /// is not required.
  std::size_t queue_depth = 4;
  /// Publications per slot — the cross-publication batching grain.
  std::size_t batch_size = 16;

  friend bool operator==(const PublishPipelineOptions&,
                         const PublishPipelineOptions&) = default;
};

class PublishPipeline {
 public:
  explicit PublishPipeline(PublishPipelineOptions options = {});
  ~PublishPipeline();

  PublishPipeline(const PublishPipeline&) = delete;
  PublishPipeline& operator=(const PublishPipeline&) = delete;

  [[nodiscard]] const PublishPipelineOptions& options() const noexcept {
    return options_;
  }
  /// Resolved match-worker count (kAuto applied).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return worker_count_;
  }

  /// Routes every publication of `pubs` (all arriving from `origin`)
  /// through the staged pipeline against `broker`'s publish lanes.
  /// `out` is resized to pubs.size(); route vectors are overwritten in
  /// place (capacity kept). Requires broker.publish_lanes() != nullptr
  /// (throws std::logic_error otherwise).
  void run(const Broker& broker, std::span<const core::Publication> pubs,
           const Origin& origin, std::vector<Broker::PublicationRoute>& out);

  /// Wire-framed form: each element of `frames` is one encoded
  /// publication (wire::write_publication); the decode stage parses it,
  /// the encode stage serializes each resulting route (encode_route).
  /// Throws wire::DecodeError on a malformed frame.
  void run_encoded(const Broker& broker,
                   std::span<const std::vector<std::uint8_t>> frames,
                   const Origin& origin,
                   std::vector<std::vector<std::uint8_t>>& encoded_out);

  /// Route frame codec used by the encode stage (varint counts + ids).
  static void encode_route(const Broker::PublicationRoute& route,
                           wire::ByteWriter& out);
  [[nodiscard]] static Broker::PublicationRoute decode_route(
      wire::ByteReader& in);

 private:
  /// One lane of the current job: a local-lane shard or a neighbour lane.
  struct LaneRef {
    const store::SubscriptionStore* store = nullptr;
    BrokerId neighbor = kInvalidBroker;  ///< kInvalidBroker: local shard
    bool skip = false;  ///< origin's own lane — never stabbed (never-send-back)
  };

  /// In-flight batch state. Written by the caller (pubs/count) and the
  /// owning workers (per-lane buffers); the slot ring's release/acquire
  /// edges order those writes against the route stage's reads.
  struct Slot {
    const core::Publication* pubs = nullptr;
    std::size_t count = 0;
    /// Matched ids per (local shard, publication), unsorted:
    /// local_ids[shard * batch_size + p].
    std::vector<std::vector<core::SubscriptionId>> local_ids;
    /// Minimum matching id per (neighbour lane, publication);
    /// kInvalidSubscriptionId = no match.
    std::vector<core::SubscriptionId> neighbor_min;
    /// Decoded-publication storage for run_encoded.
    std::vector<core::Publication> decoded;
  };

  void prepare_job(const Broker& broker, const Origin& origin);
  void fill_slot(Slot& slot, const core::Publication* pubs, std::size_t count);
  void match_lane(Slot& slot, std::size_t lane_index);
  void match_slot_for_worker(Slot& slot, std::size_t worker);
  void route_slot(const Slot& slot, const Origin& origin,
                  Broker::PublicationRoute* out);
  void ensure_started();

  PublishPipelineOptions options_;
  std::size_t worker_count_;

  // Job description for the current run. Written before the first slot
  // token is pushed; runs are serialized, so workers only ever read it.
  std::vector<LaneRef> lanes_;
  std::size_t local_lane_count_ = 0;

  std::vector<Slot> slots_;
  /// Per-lane stab scratch for neighbour lanes (owner-worker access only).
  std::vector<std::vector<core::SubscriptionId>> lane_scratch_;

  /// Per-worker slot-token rings: caller → worker and worker → caller.
  std::vector<std::unique_ptr<exec::SpscRingQueue<std::uint32_t>>> ingress_;
  std::vector<std::unique_ptr<exec::SpscRingQueue<std::uint32_t>>> done_;
  exec::StageSet stages_;
  bool started_ = false;

  /// Route-stage radix scratch.
  std::vector<core::SubscriptionId> sort_scratch_;
  /// Destination ordering scratch: (min matching id, neighbour).
  std::vector<std::pair<core::SubscriptionId, BrokerId>> dest_scratch_;
  /// run_encoded storage: decoded publications and their routes.
  std::vector<core::Publication> decoded_pubs_;
  std::vector<Broker::PublicationRoute> routes_scratch_;
};

}  // namespace psc::routing
