#include "routing/topology.hpp"

#include <cmath>
#include <stdexcept>

namespace psc::routing {

std::vector<Topology> standard_topologies(std::uint64_t seed) {
  std::vector<Topology> topologies;
  topologies.push_back({"figure1", 9, [](NetworkConfig config) {
                          return BrokerNetwork::figure1_topology(config);
                        }});
  topologies.push_back({"chain8", 8, [](NetworkConfig config) {
                          return BrokerNetwork::chain_topology(8, config);
                        }});
  topologies.push_back({"random_tree32", 32, [seed](NetworkConfig config) {
                          return BrokerNetwork::random_tree_topology(32, seed,
                                                                     config);
                        }});
  topologies.push_back({"grid6x6", 36, [](NetworkConfig config) {
                          return BrokerNetwork::grid_topology(6, 6, config);
                        }});
  topologies.push_back({"random_regular24d3", 24, [seed](NetworkConfig config) {
                          return BrokerNetwork::random_regular_topology(
                              24, 3, seed, config);
                        }});
  return topologies;
}

MembershipUniverse MembershipTopology::universe(const BrokerNetwork& net) const {
  MembershipUniverse universe = net.universe();
  universe.standby = standby;
  return universe;
}

namespace {

/// ceil(n / 9) copies of the paper's Figure 1 overlay, chained into one
/// tree by linking each copy's backbone hub B4 to the next copy's B4.
BrokerNetwork build_figure1_tiled(std::size_t copies, NetworkConfig config) {
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < copies * 9; ++i) net.add_broker();
  for (std::size_t c = 0; c < copies; ++c) {
    const auto at = [c](int broker_number) {
      return static_cast<BrokerId>(c * 9 + broker_number - 1);
    };
    net.connect(at(1), at(3));
    net.connect(at(2), at(3));
    net.connect(at(3), at(4));
    net.connect(at(4), at(5));
    net.connect(at(4), at(6));
    net.connect(at(4), at(7));
    net.connect(at(7), at(8));
    net.connect(at(7), at(9));
    if (c > 0) net.connect(static_cast<BrokerId>((c - 1) * 9 + 3), at(4));
  }
  return net;
}

/// Three star clusters; the cluster heads form an open chain, and the
/// standby bridge (head0, head2) would close the head ring.
BrokerNetwork build_clustered_mesh(std::size_t n, NetworkConfig config) {
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  const std::size_t per = n / 3;
  std::vector<BrokerId> heads;
  for (std::size_t c = 0; c < 3; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = (c == 2) ? n : lo + per;  // last takes the slack
    heads.push_back(static_cast<BrokerId>(lo));
    for (std::size_t b = lo + 1; b < hi; ++b) {
      net.connect(heads.back(), static_cast<BrokerId>(b));
    }
  }
  net.connect(heads[0], heads[1]);
  net.connect(heads[1], heads[2]);
  return net;
}

}  // namespace

std::vector<MembershipTopology> membership_topologies(std::size_t n,
                                                      std::uint64_t seed) {
  if (n < 12) {
    throw std::invalid_argument("membership_topologies: n must be >= 12");
  }
  std::vector<MembershipTopology> topologies;

  const std::size_t copies = (n + 8) / 9;
  topologies.push_back({"figure1_tiled", copies * 9,
                        [copies](NetworkConfig config) {
                          return build_figure1_tiled(copies, config);
                        },
                        {}});
  topologies.push_back({"chain", n,
                        [n](NetworkConfig config) {
                          return BrokerNetwork::chain_topology(n, config);
                        },
                        {}});
  topologies.push_back({"random_tree", n,
                        [n, seed](NetworkConfig config) {
                          return BrokerNetwork::random_tree_topology(n, seed,
                                                                     config);
                        },
                        {}});
  const auto rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  const std::size_t cols = (n + rows - 1) / rows;
  topologies.push_back({"grid", rows * cols,
                        [rows, cols](NetworkConfig config) {
                          return BrokerNetwork::grid_topology(rows, cols,
                                                              config);
                        },
                        {}});
  const std::size_t even_n = n % 2 == 0 ? n : n + 1;
  topologies.push_back({"random_regular_d3", even_n,
                        [even_n, seed](NetworkConfig config) {
                          return BrokerNetwork::random_regular_topology(
                              even_n, 3, seed, config);
                        },
                        {}});
  // Dynamic-bridge shapes: the standby link closes a cycle the forest
  // invariant keeps down; churn heals it whenever a partition makes it a
  // bridge between components.
  topologies.push_back({"ring", n,
                        [n](NetworkConfig config) {
                          return BrokerNetwork::chain_topology(n, config);
                        },
                        {{0, static_cast<BrokerId>(n - 1)}}});
  const std::size_t per = n / 3;
  topologies.push_back({"clustered_mesh", n,
                        [n](NetworkConfig config) {
                          return build_clustered_mesh(n, config);
                        },
                        {{0, static_cast<BrokerId>(2 * per)}}});
  return topologies;
}

}  // namespace psc::routing
