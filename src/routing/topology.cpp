#include "routing/topology.hpp"

namespace psc::routing {

std::vector<Topology> standard_topologies(std::uint64_t seed) {
  std::vector<Topology> topologies;
  topologies.push_back({"figure1", 9, [](NetworkConfig config) {
                          return BrokerNetwork::figure1_topology(config);
                        }});
  topologies.push_back({"chain8", 8, [](NetworkConfig config) {
                          return BrokerNetwork::chain_topology(8, config);
                        }});
  topologies.push_back({"random_tree32", 32, [seed](NetworkConfig config) {
                          return BrokerNetwork::random_tree_topology(32, seed,
                                                                     config);
                        }});
  topologies.push_back({"grid6x6", 36, [](NetworkConfig config) {
                          return BrokerNetwork::grid_topology(6, 6, config);
                        }});
  topologies.push_back({"random_regular24d3", 24, [seed](NetworkConfig config) {
                          return BrokerNetwork::random_regular_topology(
                              24, 3, seed, config);
                        }});
  return topologies;
}

}  // namespace psc::routing
