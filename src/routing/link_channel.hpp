// LinkChannels — the reliable-delivery transport between brokers when the
// wire is unreliable (NetworkConfig::link.enabled).
//
// Every directed link (from -> to) carries an independent channel running a
// go-back-N protocol over wire::LinkFrame frames:
//   * the sender stamps each Announcement with a per-link monotone sequence
//     number, keeps up to `window` unacked frames (later sends park in a
//     backlog — backpressure, counted), and retransmits ALL unacked frames
//     when the retransmit timer fires, doubling the timeout up to rto_max;
//   * after `max_retries` consecutive timeouts with no ack progress the
//     channel gives up and ESCALATES: both directions mute, and the network
//     turns the escalation into a fail_link at the next quiescent point
//     (the PR-7 partition/repair machinery takes over from there);
//   * the receiver delivers exactly-once in-order: duplicates are
//     suppressed (and re-acked — the first ack may have been lost), gaps
//     park frames in a bounded reorder buffer that drains as the missing
//     frames arrive, and every delivery schedules a cumulative ack —
//     piggybacked on any data frame headed back, or a pure ack frame after
//     ack_delay when the reverse direction is idle.
//
// Faults come from a per-directed-link sim::LinkFaultModel (seeded, so two
// runs with one seed see identical fault schedules) plus scripted
// burst-loss windows installed from the workload trace. The protocol makes
// delivery fault-INVARIANT — the differential soaks replay the same trace
// with and without faults and demand identical delivered sets — except
// where a burst outlives the whole retransmit chain, which deterministic-
// ally escalates into the same fail_link the oracle mirrors.
//
// Determinism & safety notes:
//   * all timers capture (key, epoch, generation) values, never pointers;
//     a fired timer re-looks the channel up and drops itself when stale;
//   * reset_link bumps the epoch, so in-flight arrivals and timers from
//     before a fail/heal/crash/restore can never leak into the new link
//     incarnation;
//   * frames are actually encoded/decoded through wire::write_link_frame /
//     read_link_frame per transmission, so the codec path is exercised on
//     every lossy hop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "routing/broker.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_fault_model.hpp"
#include "sim/metrics.hpp"
#include "wire/codec.hpp"

namespace psc::routing {

/// Reliable-link protocol knobs (NetworkConfig::link). Zero-valued timing
/// knobs auto-derive from the link latency: rto = 4 x latency,
/// rto_max = 8 x rto, ack_delay = latency.
struct LinkConfig {
  bool enabled = false;       ///< route hops through LinkChannels
  double rto = 0.0;           ///< initial retransmit timeout; 0 = 4 x latency
  double backoff = 2.0;       ///< RTO multiplier per consecutive timeout
  double rto_max = 0.0;       ///< RTO ceiling; 0 = 8 x effective rto
  std::size_t max_retries = 12;  ///< timeouts before escalating to fail_link
  std::size_t window = 128;   ///< max unacked frames per directed link
  double ack_delay = 0.0;     ///< pure-ack latency; 0 = link latency
  sim::LinkFaultConfig faults;  ///< injected fault rates, every direction

  [[nodiscard]] double effective_rto(double latency) const noexcept {
    return rto > 0 ? rto : 4.0 * latency;
  }
  [[nodiscard]] double effective_rto_max(double latency) const noexcept {
    return rto_max > 0 ? rto_max : 8.0 * effective_rto(latency);
  }
  [[nodiscard]] double effective_ack_delay(double latency) const noexcept {
    return ack_delay > 0 ? ack_delay : latency;
  }

  /// Upper bound on the time one hop can take from send() to either
  /// delivery or escalation: the full retransmit-backoff chain plus the
  /// worst one-way trip (latency + jitter + reorder push) on each end and
  /// one delayed ack. The lossy cascade horizon and the workload's slot
  /// validation (ChurnConfig::FaultConfig::cascade_hop_bound) derive from
  /// this.
  [[nodiscard]] double worst_hop_delay(double latency) const noexcept;
};

class LinkChannels {
 public:
  /// Delivery callback: a data frame's Announcement arrived in order at
  /// `to` over the link from `from` (invoked mid-cascade, may send more).
  using DeliverFn =
      std::function<void(BrokerId from, BrokerId to, const wire::Announcement&)>;
  /// Escalation callback: the (a, b) link's retry cap fired; the network
  /// must fail_link it once the cascade quiesces. Invoked at most once per
  /// link incarnation (both directions mute immediately).
  using EscalateFn = std::function<void(BrokerId a, BrokerId b)>;

  /// One scripted burst-loss window on the undirected link (a, b): every
  /// transmission attempt in EITHER direction during [start, end) is lost.
  struct BurstWindow {
    BrokerId a = 0;
    BrokerId b = 0;
    sim::SimTime start = 0.0;
    sim::SimTime end = 0.0;
  };

  LinkChannels(sim::EventQueue& queue, sim::Metrics& metrics,
               const LinkConfig& config, sim::SimTime latency,
               std::uint64_t seed, DeliverFn deliver, EscalateFn escalate);

  /// Queues one Announcement for reliable in-order delivery from -> to.
  /// Silently dropped while the link is escalating (the pending fail_link
  /// purge makes the frame moot). Transmission happens inline: the arrival
  /// (or retransmit timer) is scheduled on the event queue.
  void send(BrokerId from, BrokerId to, const wire::Announcement& msg);

  /// Resets both directions of (a, b): state cleared, sequences restart at
  /// zero on both ends, in-flight frames and timers from the old
  /// incarnation become stale. Call on fail/heal/attach/crash so the two
  /// endpoints always agree on the stream position.
  void reset_link(BrokerId a, BrokerId b);

  /// Resets every channel (restore_all / full-network teardown).
  void reset_all();

  /// Installs the scripted burst schedule (absolute sim-time windows,
  /// applied to both directions of each listed link). Replaces any prior
  /// schedule; affects channels created later too.
  void set_bursts(std::vector<BurstWindow> bursts);

  /// Frames queued (unacked + backlog) across all channels — zero at true
  /// quiescence unless a link is mid-escalation.
  [[nodiscard]] std::size_t in_flight() const noexcept;

 private:
  using Key = std::uint64_t;  ///< (from << 32) | to
  static constexpr Key make_key(BrokerId from, BrokerId to) noexcept {
    return (static_cast<Key>(from) << 32) | to;
  }

  struct Channel {
    BrokerId from = 0;
    BrokerId to = 0;
    /// Incarnation counter: bumped by every reset so stale timers and
    /// in-flight arrivals drop themselves. Never rewinds.
    std::uint64_t epoch = 0;
    /// Escalated: drop sends until the network fails the link and resets.
    bool muted = false;

    // --- sender state (stream from -> to) ------------------------------
    std::uint64_t next_seq = 0;
    struct Pending {
      std::uint64_t seq = 0;
      std::vector<std::uint8_t> payload;  ///< encoded Announcement
    };
    std::deque<Pending> unacked;   ///< in flight, <= window entries
    std::deque<Pending> backlog;   ///< parked behind a full window
    std::size_t retries = 0;       ///< consecutive timeouts w/o ack progress
    double rto_cur = 0.0;
    std::uint64_t rto_gen = 0;     ///< arms/disarms the retransmit timer
    /// Armed retransmit timer, cancelled on disarm/reset so the handler
    /// (and what it captures) is released immediately instead of riding
    /// the queue to a possibly rto_max-deep backoff deadline. The gen
    /// guard above stays as defense in depth.
    sim::EventQueue::TimerId rto_timer = sim::EventQueue::kNoTimer;

    // --- receiver state (frames arriving from -> to, kept at `to`) -----
    std::uint64_t next_expected = 0;  ///< == cumulative ack we owe
    std::map<std::uint64_t, std::vector<std::uint8_t>> reorder;
    bool ack_pending = false;
    std::uint64_t ack_gen = 0;     ///< arms/disarms the delayed-ack timer
    /// Armed delayed-ack timer; same ownership contract as rto_timer.
    sim::EventQueue::TimerId ack_timer = sim::EventQueue::kNoTimer;

    sim::LinkFaultModel faults;

    Channel(BrokerId from_, BrokerId to_, const sim::LinkFaultConfig& config,
            std::uint64_t seed)
        : from(from_), to(to_), faults(config, seed, from_, to_) {}
  };

  Channel& ensure(BrokerId from, BrokerId to);
  [[nodiscard]] Channel* find(Key key) noexcept;

  /// Cumulative ack we owe for the reverse stream (to -> from), or 0 when
  /// no such channel exists yet.
  [[nodiscard]] std::uint64_t reverse_ack(const Channel& ch) noexcept;

  /// One physical transmission attempt: runs the fault model, encodes the
  /// frame, and schedules the arrival(s). Pure acks ride the same path.
  void transmit(Channel& ch, const wire::LinkFrame& frame);
  void on_arrival(Key key, std::uint64_t epoch,
                  std::vector<std::uint8_t> bytes);
  void process_ack(Channel& reverse, std::uint64_t ack);
  void process_data(Channel& ch, std::uint64_t seq,
                    std::vector<std::uint8_t>& payload);
  void deliver_payload(Channel& ch, const std::vector<std::uint8_t>& payload);

  void arm_rto(Channel& ch);
  void disarm_rto(Channel& ch) noexcept {
    ++ch.rto_gen;
    queue_.cancel(std::exchange(ch.rto_timer, sim::EventQueue::kNoTimer));
  }
  void disarm_ack(Channel& ch) noexcept {
    ch.ack_pending = false;
    ++ch.ack_gen;
    queue_.cancel(std::exchange(ch.ack_timer, sim::EventQueue::kNoTimer));
  }
  void on_rto(Key key, std::uint64_t epoch, std::uint64_t gen);
  void escalate(Channel& ch);

  void request_ack(Channel& ch);
  void on_ack_timer(Key key, std::uint64_t epoch, std::uint64_t gen);

  void reset_channel(Channel& ch);
  void apply_bursts(Channel& ch);

  sim::EventQueue& queue_;
  sim::Metrics& metrics_;
  LinkConfig config_;
  sim::SimTime latency_;
  std::uint64_t seed_;
  DeliverFn deliver_;
  EscalateFn escalate_;
  double rto_base_ = 0.0;
  double rto_max_ = 0.0;
  double ack_delay_ = 0.0;
  std::unordered_map<Key, Channel> channels_;
  std::vector<BurstWindow> bursts_;
};

}  // namespace psc::routing
