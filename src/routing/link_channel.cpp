#include "routing/link_channel.hpp"

#include <algorithm>
#include <utility>

namespace psc::routing {

double LinkConfig::worst_hop_delay(double latency) const noexcept {
  // Worst chain: the frame (re)transmits through every backoff step before
  // the last copy gets through (or the cap escalates), plus one worst-case
  // one-way trip for the surviving copy and one delayed ack closing the
  // window behind it. Go-back-N retransmits the whole window per timeout,
  // so the chain is shared by every frame in flight, not per-frame.
  const double one_way =
      latency + sim::LinkFaultModel::worst_extra_delay(faults, latency);
  double chain = 0.0;
  double cur = effective_rto(latency);
  const double cap = effective_rto_max(latency);
  for (std::size_t i = 0; i <= max_retries; ++i) {
    chain += cur;
    cur = std::min(cur * backoff, cap);
  }
  return chain + 2.0 * one_way + effective_ack_delay(latency);
}

LinkChannels::LinkChannels(sim::EventQueue& queue, sim::Metrics& metrics,
                           const LinkConfig& config, sim::SimTime latency,
                           std::uint64_t seed, DeliverFn deliver,
                           EscalateFn escalate)
    : queue_(queue),
      metrics_(metrics),
      config_(config),
      latency_(latency),
      seed_(seed),
      deliver_(std::move(deliver)),
      escalate_(std::move(escalate)),
      rto_base_(config.effective_rto(latency)),
      rto_max_(config.effective_rto_max(latency)),
      ack_delay_(config.effective_ack_delay(latency)) {}

LinkChannels::Channel* LinkChannels::find(Key key) noexcept {
  const auto it = channels_.find(key);
  return it == channels_.end() ? nullptr : &it->second;
}

LinkChannels::Channel& LinkChannels::ensure(BrokerId from, BrokerId to) {
  const Key key = make_key(from, to);
  const auto it = channels_.find(key);
  if (it != channels_.end()) return it->second;
  auto [slot, inserted] = channels_.emplace(
      std::piecewise_construct, std::forward_as_tuple(key),
      std::forward_as_tuple(from, to, config_.faults, seed_));
  slot->second.rto_cur = rto_base_;
  apply_bursts(slot->second);
  return slot->second;
}

void LinkChannels::apply_bursts(Channel& ch) {
  std::vector<sim::BurstWindow> windows;
  for (const BurstWindow& burst : bursts_) {
    const bool matches = (burst.a == ch.from && burst.b == ch.to) ||
                         (burst.a == ch.to && burst.b == ch.from);
    if (matches) windows.push_back({burst.start, burst.end});
  }
  ch.faults.set_bursts(std::move(windows));
}

void LinkChannels::set_bursts(std::vector<BurstWindow> bursts) {
  bursts_ = std::move(bursts);
  for (auto& [key, ch] : channels_) apply_bursts(ch);
}

std::uint64_t LinkChannels::reverse_ack(const Channel& ch) noexcept {
  // A frame travelling from -> to acknowledges the reverse stream
  // (to -> from), whose receiver cursor lives on that channel's record.
  const Channel* rev = find(make_key(ch.to, ch.from));
  return rev ? rev->next_expected : 0;
}

void LinkChannels::send(BrokerId from, BrokerId to,
                        const wire::Announcement& msg) {
  Channel& ch = ensure(from, to);
  if (ch.muted) return;  // escalating; the pending fail_link purge covers it

  wire::ByteWriter payload;
  wire::write_announcement(payload, msg);
  Channel::Pending pending{ch.next_seq++, payload.take()};

  if (ch.unacked.size() >= config_.window) {
    ++metrics_.backpressure_stalls;
    ch.backlog.push_back(std::move(pending));
    return;
  }
  // Sending data satisfies any delayed-ack obligation for the reverse
  // stream: the piggybacked ack below says everything a pure ack would.
  // (Backlogged frames above do NOT — they transmit later, so the pure-ack
  // timer must stay armed.)
  if (Channel* rev = find(make_key(to, from)); rev && rev->ack_pending) {
    disarm_ack(*rev);
  }
  const bool was_idle = ch.unacked.empty();
  ch.unacked.push_back(std::move(pending));
  wire::LinkFrame frame;
  frame.kind = wire::LinkFrame::Kind::kData;
  frame.seq = ch.unacked.back().seq;
  frame.ack = reverse_ack(ch);
  frame.payload = ch.unacked.back().payload;
  transmit(ch, frame);
  if (was_idle) arm_rto(ch);
}

void LinkChannels::transmit(Channel& ch, const wire::LinkFrame& frame) {
  const sim::LinkFaultModel::Outcome outcome =
      ch.faults.next(queue_.now(), latency_);
  if (outcome.dropped) {
    ++metrics_.frames_dropped;
    return;
  }
  wire::ByteWriter out;
  wire::write_link_frame(out, frame);
  std::vector<std::uint8_t> bytes = out.take();
  const Key key = make_key(ch.from, ch.to);
  const std::uint64_t epoch = ch.epoch;
  if (outcome.duplicated) {
    ++metrics_.frames_duplicated;
    queue_.schedule_in(latency_ + outcome.dup_extra_delay,
                       [this, key, epoch, copy = bytes]() mutable {
                         on_arrival(key, epoch, std::move(copy));
                       });
  }
  queue_.schedule_in(latency_ + outcome.extra_delay,
                     [this, key, epoch, bytes = std::move(bytes)]() mutable {
                       on_arrival(key, epoch, std::move(bytes));
                     });
}

void LinkChannels::on_arrival(Key key, std::uint64_t epoch,
                              std::vector<std::uint8_t> bytes) {
  Channel* ch = find(key);
  if (ch == nullptr || ch->epoch != epoch || ch->muted) return;  // stale
  wire::ByteReader in(bytes);
  wire::LinkFrame frame = wire::read_link_frame(in);

  // Ack first: freeing the reverse window before delivering means any
  // sends the delivery triggers see up-to-date backpressure state.
  if (Channel* rev = find(make_key(ch->to, ch->from))) {
    process_ack(*rev, frame.ack);
  }
  if (frame.kind == wire::LinkFrame::Kind::kData) {
    process_data(*ch, frame.seq, frame.payload);
  }
}

void LinkChannels::process_ack(Channel& rev, std::uint64_t ack) {
  if (rev.muted) return;
  bool progress = false;
  while (!rev.unacked.empty() && rev.unacked.front().seq < ack) {
    rev.unacked.pop_front();
    progress = true;
  }
  if (!progress) return;
  rev.retries = 0;
  rev.rto_cur = rto_base_;
  while (!rev.backlog.empty() && rev.unacked.size() < config_.window) {
    rev.unacked.push_back(std::move(rev.backlog.front()));
    rev.backlog.pop_front();
    wire::LinkFrame frame;
    frame.kind = wire::LinkFrame::Kind::kData;
    frame.seq = rev.unacked.back().seq;
    frame.ack = reverse_ack(rev);
    frame.payload = rev.unacked.back().payload;
    transmit(rev, frame);
  }
  if (rev.unacked.empty()) {
    disarm_rto(rev);
  } else {
    arm_rto(rev);
  }
}

void LinkChannels::deliver_payload(Channel& ch,
                                   const std::vector<std::uint8_t>& payload) {
  wire::ByteReader in(payload);
  const wire::Announcement msg = wire::read_announcement(in);
  deliver_(ch.from, ch.to, msg);
}

void LinkChannels::process_data(Channel& ch, std::uint64_t seq,
                                std::vector<std::uint8_t>& payload) {
  if (seq < ch.next_expected || ch.reorder.count(seq) > 0) {
    // Duplicate — either the wire duplicated it or a retransmit raced the
    // ack. Re-ack so a lost ack cannot wedge the sender.
    ++metrics_.dups_suppressed;
    request_ack(ch);
    return;
  }
  if (seq == ch.next_expected) {
    ++ch.next_expected;
    deliver_payload(ch, payload);
    // Note: delivery can re-enter send() on other channels; `ch` stays
    // valid (unordered_map never moves mapped values) and resets only
    // happen at quiescent points, never mid-cascade.
    while (!ch.reorder.empty() &&
           ch.reorder.begin()->first == ch.next_expected) {
      const std::vector<std::uint8_t> healed =
          std::move(ch.reorder.begin()->second);
      ch.reorder.erase(ch.reorder.begin());
      ++ch.next_expected;
      ++metrics_.reorders_healed;
      deliver_payload(ch, healed);
    }
  } else if (ch.reorder.size() < config_.window &&
             seq < ch.next_expected + config_.window) {
    ch.reorder.emplace(seq, std::move(payload));
  } else {
    ++metrics_.frames_dropped;  // reorder buffer overflow: as good as lost
  }
  request_ack(ch);
}

void LinkChannels::request_ack(Channel& ch) {
  if (ch.ack_pending) return;
  ch.ack_pending = true;
  const std::uint64_t gen = ++ch.ack_gen;
  const Key key = make_key(ch.from, ch.to);
  const std::uint64_t epoch = ch.epoch;
  ch.ack_timer =
      queue_.schedule_cancelable_in(ack_delay_, [this, key, epoch, gen]() {
        on_ack_timer(key, epoch, gen);
      });
}

void LinkChannels::on_ack_timer(Key key, std::uint64_t epoch,
                                std::uint64_t gen) {
  Channel* ch = find(key);
  if (ch == nullptr || ch->epoch != epoch || ch->ack_gen != gen ||
      !ch->ack_pending || ch->muted) {
    return;  // stale, or a data frame already piggybacked the ack
  }
  ch->ack_pending = false;
  ch->ack_timer = sim::EventQueue::kNoTimer;  // this firing consumed it
  // The pure ack travels the reverse direction (to -> from) and is itself
  // unreliable: a lost ack is healed by the sender's retransmit, whose
  // duplicate triggers a fresh re-ack here.
  Channel& rev = ensure(ch->to, ch->from);
  if (rev.muted) return;
  wire::LinkFrame frame;
  frame.kind = wire::LinkFrame::Kind::kAck;
  frame.ack = ch->next_expected;
  ++metrics_.acks_sent;
  transmit(rev, frame);
}

void LinkChannels::arm_rto(Channel& ch) {
  const std::uint64_t gen = ++ch.rto_gen;
  const Key key = make_key(ch.from, ch.to);
  const std::uint64_t epoch = ch.epoch;
  // Re-arming supersedes any armed timer: release its handler now rather
  // than letting it ride to its (backoff-deep) deadline as a stale no-op.
  queue_.cancel(ch.rto_timer);
  ch.rto_timer =
      queue_.schedule_cancelable_in(ch.rto_cur, [this, key, epoch, gen]() {
        on_rto(key, epoch, gen);
      });
}

void LinkChannels::on_rto(Key key, std::uint64_t epoch, std::uint64_t gen) {
  Channel* ch = find(key);
  if (ch == nullptr || ch->epoch != epoch || ch->rto_gen != gen || ch->muted) {
    return;  // stale: acked, reset, or superseded by a later arm
  }
  ch->rto_timer = sim::EventQueue::kNoTimer;  // this firing consumed it
  if (ch->unacked.empty()) return;
  ++ch->retries;
  if (ch->retries > config_.max_retries) {
    escalate(*ch);
    return;
  }
  // Go-back-N: retransmit the whole window. Cumulative acks mean any copy
  // that got through is re-acked for free, and the shared timer keeps the
  // worst-case chain per window-load, not per frame.
  metrics_.retransmits += ch->unacked.size();
  for (const Channel::Pending& pending : ch->unacked) {
    wire::LinkFrame frame;
    frame.kind = wire::LinkFrame::Kind::kData;
    frame.seq = pending.seq;
    frame.ack = reverse_ack(*ch);
    frame.payload = pending.payload;
    transmit(*ch, frame);
  }
  ch->rto_cur = std::min(ch->rto_cur * config_.backoff, rto_max_);
  arm_rto(*ch);
}

void LinkChannels::escalate(Channel& ch) {
  ++metrics_.link_escalations;
  const BrokerId a = ch.from;
  const BrokerId b = ch.to;
  // Mute and freeze BOTH directions: the link is as good as down, and the
  // epoch bump turns every in-flight frame and timer into a stale no-op.
  // The network fails the link at the next quiescent point and calls
  // reset_link, which unmutes with both streams back at sequence zero.
  for (const Key key : {make_key(a, b), make_key(b, a)}) {
    if (Channel* dir = find(key)) {
      dir->muted = true;
      ++dir->epoch;
      dir->unacked.clear();
      dir->backlog.clear();
      dir->reorder.clear();
      disarm_rto(*dir);
      disarm_ack(*dir);
    }
  }
  escalate_(a, b);
}

void LinkChannels::reset_channel(Channel& ch) {
  ++ch.epoch;
  ch.muted = false;
  ch.next_seq = 0;
  ch.unacked.clear();
  ch.backlog.clear();
  ch.retries = 0;
  ch.rto_cur = rto_base_;
  // disarm_* cancel the armed timers outright (not just gen-stale them):
  // this is the reset_link ownership fix — a delayed-ack or retransmit
  // handler from the dead incarnation is destroyed here, not parked in the
  // queue until its (possibly far-future) deadline.
  disarm_rto(ch);
  ch.next_expected = 0;
  ch.reorder.clear();
  disarm_ack(ch);
  // The fault model is NOT reset: its stream position advances one draw per
  // transmission attempt for the life of the run, so adding or removing a
  // link incarnation never shifts another link's fault schedule.
}

void LinkChannels::reset_link(BrokerId a, BrokerId b) {
  for (const Key key : {make_key(a, b), make_key(b, a)}) {
    if (Channel* dir = find(key)) reset_channel(*dir);
  }
}

void LinkChannels::reset_all() {
  for (auto& [key, ch] : channels_) reset_channel(ch);
}

std::size_t LinkChannels::in_flight() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, ch] : channels_) {
    total += ch.unacked.size() + ch.backlog.size();
  }
  return total;
}

}  // namespace psc::routing
