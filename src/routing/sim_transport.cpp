#include "routing/sim_transport.hpp"

#include <utility>

namespace psc::routing {

SimTransport::SimTransport(sim::EventQueue& queue, sim::Metrics& metrics,
                           const LinkConfig& link, sim::SimTime latency,
                           std::uint64_t seed,
                           LinkChannels::EscalateFn escalate)
    : queue_(queue), latency_(latency), link_(link) {
  if (link_.enabled) {
    channels_ = std::make_unique<LinkChannels>(
        queue, metrics, link_, latency_, seed,
        [this](BrokerId from, BrokerId to, const wire::Announcement& msg) {
          if (handler_) handler_(from, to, msg);
        },
        std::move(escalate));
  }
}

void SimTransport::set_frame_handler(FrameHandler handler) {
  handler_ = std::move(handler);
}

void SimTransport::send_frame(BrokerId from, BrokerId to,
                              const wire::Announcement& msg) {
  if (channels_) {
    channels_->send(from, to, msg);
    return;
  }
  // Perfect wire: one hop = one event at now + latency, delivered straight
  // into the demux. The copy into the capture mirrors the pre-seam lambdas
  // (which captured the message fields by value).
  queue_.schedule_in(latency_, [this, from, to, msg]() {
    if (handler_) handler_(from, to, msg);
  });
}

void SimTransport::reset_link(BrokerId a, BrokerId b) {
  if (channels_) channels_->reset_link(a, b);
}

void SimTransport::set_bursts(std::vector<LinkChannels::BurstWindow> bursts) {
  if (channels_) channels_->set_bursts(std::move(bursts));
}

std::size_t SimTransport::in_flight() const noexcept {
  return channels_ ? channels_->in_flight() : 0;
}

}  // namespace psc::routing
