#include "routing/membership.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace psc::routing {

namespace {

constexpr std::uint32_t kNoComponent = 0xffffffffU;

std::pair<BrokerId, BrokerId> norm(BrokerId a, BrokerId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

LinkState::LinkState(const MembershipUniverse& universe) {
  alive_.assign(universe.brokers, 1);
  for (const auto& [a, b] : universe.links) add_link(a, b);
  for (const auto& [a, b] : universe.standby) add_standby(a, b);
}

void LinkState::check_id(BrokerId b, const char* what) const {
  if (b >= alive_.size()) {
    throw std::invalid_argument(std::string("LinkState::") + what +
                                ": unknown broker id");
  }
}

BrokerId LinkState::add_broker() {
  alive_.push_back(1);
  components_dirty_ = true;
  return static_cast<BrokerId>(alive_.size() - 1);
}

void LinkState::add_link(BrokerId a, BrokerId b) {
  check_id(a, "add_link");
  check_id(b, "add_link");
  if (a == b) throw std::invalid_argument("LinkState::add_link: self-link");
  if (!alive_[a] || !alive_[b]) {
    throw std::logic_error("LinkState::add_link: dead endpoint");
  }
  if (same_component(a, b)) {
    throw std::logic_error(
        "LinkState::add_link: endpoints already connected (forest invariant)");
  }
  const auto key = norm(a, b);
  if (failed_.count(key) > 0) {
    throw std::logic_error("LinkState::add_link: link exists (failed)");
  }
  links_.insert(key);
  components_dirty_ = true;
}

void LinkState::add_standby(BrokerId a, BrokerId b) {
  check_id(a, "add_standby");
  check_id(b, "add_standby");
  if (a == b) throw std::invalid_argument("LinkState::add_standby: self-link");
  const auto key = norm(a, b);
  if (links_.count(key) > 0) {
    throw std::logic_error("LinkState::add_standby: link is live");
  }
  failed_.insert(key);
}

void LinkState::fail_link(BrokerId a, BrokerId b) {
  check_id(a, "fail_link");
  check_id(b, "fail_link");
  const auto key = norm(a, b);
  if (links_.erase(key) == 0) {
    throw std::invalid_argument("LinkState::fail_link: link is not live");
  }
  failed_.insert(key);
  components_dirty_ = true;
}

void LinkState::heal_link(BrokerId a, BrokerId b) {
  check_id(a, "heal_link");
  check_id(b, "heal_link");
  const auto key = norm(a, b);
  if (failed_.count(key) == 0) {
    throw std::invalid_argument("LinkState::heal_link: link is not failed");
  }
  if (!alive_[a] || !alive_[b]) {
    throw std::logic_error("LinkState::heal_link: dead endpoint");
  }
  if (same_component(a, b)) {
    throw std::logic_error(
        "LinkState::heal_link: endpoints already connected (forest invariant)");
  }
  failed_.erase(key);
  links_.insert(key);
  components_dirty_ = true;
}

std::vector<std::pair<BrokerId, BrokerId>> LinkState::remove_peer(BrokerId b) {
  check_id(b, "remove_peer");
  if (!alive_[b]) throw std::logic_error("LinkState::remove_peer: dead broker");
  const std::vector<BrokerId> former = neighbors(b);
  // A leaving broker takes every incident link — live and provisioned —
  // with it; there is nothing left to heal to.
  for (auto it = links_.begin(); it != links_.end();) {
    it = (it->first == b || it->second == b) ? links_.erase(it) : std::next(it);
  }
  for (auto it = failed_.begin(); it != failed_.end();) {
    it = (it->first == b || it->second == b) ? failed_.erase(it) : std::next(it);
  }
  alive_[b] = 0;
  components_dirty_ = true;

  // Star repair over the former neighbours: the lowest-id one becomes the
  // hub. On a tree the neighbours land in deg(b) distinct components, so
  // every spoke bridges; the same_component guard keeps the plan correct
  // even if standby heals elsewhere already reconnected a pair.
  std::vector<std::pair<BrokerId, BrokerId>> repairs;
  if (former.size() > 1) {
    const BrokerId hub = former.front();
    for (std::size_t i = 1; i < former.size(); ++i) {
      if (same_component(hub, former[i])) continue;
      // If the spoke coincides with a failed/standby link, this repair IS
      // bringing that provisioned link up; otherwise provision a new one.
      if (failed_.count(norm(hub, former[i])) > 0) {
        heal_link(hub, former[i]);
      } else {
        add_link(hub, former[i]);
      }
      repairs.emplace_back(hub, former[i]);
    }
  }
  return repairs;
}

std::vector<std::pair<BrokerId, BrokerId>> LinkState::crash_peer(BrokerId b) {
  check_id(b, "crash_peer");
  if (!alive_[b]) throw std::logic_error("LinkState::crash_peer: dead broker");
  std::vector<std::pair<BrokerId, BrokerId>> downed;
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->first == b || it->second == b) {
      downed.push_back(*it);
      failed_.insert(*it);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  alive_[b] = 0;
  components_dirty_ = true;
  return downed;
}

void LinkState::set_dead(BrokerId b) {
  check_id(b, "set_dead");
  for (const auto& [x, y] : links_) {
    if (x == b || y == b) {
      throw std::logic_error("LinkState::set_dead: live link incident");
    }
  }
  alive_[b] = 0;
  components_dirty_ = true;
}

std::vector<std::pair<BrokerId, BrokerId>> LinkState::replace_peer(BrokerId b) {
  check_id(b, "replace_peer");
  if (alive_[b]) {
    throw std::logic_error("LinkState::replace_peer: broker is alive");
  }
  alive_[b] = 1;
  components_dirty_ = true;
  // Heal former links in ascending-peer order while they still bridge
  // distinct components: the replacement rejoins every partition its crash
  // created, but never closes a cycle a standby heal formed meanwhile.
  std::vector<std::pair<BrokerId, BrokerId>> healed;
  std::vector<std::pair<BrokerId, BrokerId>> candidates;
  for (const auto& link : failed_) {
    if (link.first == b || link.second == b) candidates.push_back(link);
  }
  for (const auto& [x, y] : candidates) {
    const BrokerId other = (x == b) ? y : x;
    if (!alive_[other] || same_component(b, other)) continue;
    heal_link(x, y);
    healed.emplace_back(x, y);
  }
  return healed;
}

std::size_t LinkState::alive_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), char{1}));
}

bool LinkState::is_alive(BrokerId b) const {
  check_id(b, "is_alive");
  return alive_[b] != 0;
}

bool LinkState::has_link(BrokerId a, BrokerId b) const {
  check_id(a, "has_link");
  check_id(b, "has_link");
  return links_.count(norm(a, b)) > 0;
}

bool LinkState::has_failed_link(BrokerId a, BrokerId b) const {
  check_id(a, "has_failed_link");
  check_id(b, "has_failed_link");
  return failed_.count(norm(a, b)) > 0;
}

std::vector<BrokerId> LinkState::neighbors(BrokerId b) const {
  check_id(b, "neighbors");
  std::vector<BrokerId> out;
  for (const auto& [x, y] : links_) {
    if (x == b) out.push_back(y);
    if (y == b) out.push_back(x);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void LinkState::refresh_components() const {
  component_.assign(alive_.size(), kNoComponent);
  // Adjacency from the live link set; BFS labels each alive component.
  std::vector<std::vector<BrokerId>> adjacency(alive_.size());
  for (const auto& [a, b] : links_) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::uint32_t next_component = 0;
  std::vector<BrokerId> frontier;
  for (BrokerId start = 0; start < alive_.size(); ++start) {
    if (!alive_[start] || component_[start] != kNoComponent) continue;
    const std::uint32_t label = next_component++;
    component_[start] = label;
    frontier.assign(1, start);
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      for (const BrokerId peer : adjacency[frontier[head]]) {
        if (component_[peer] != kNoComponent) continue;
        component_[peer] = label;
        frontier.push_back(peer);
      }
    }
  }
  components_dirty_ = false;
}

bool LinkState::same_component(BrokerId a, BrokerId b) const {
  check_id(a, "same_component");
  check_id(b, "same_component");
  if (!alive_[a] || !alive_[b]) return false;
  if (components_dirty_) refresh_components();
  return component_[a] == component_[b];
}

std::size_t LinkState::component_count() const {
  if (components_dirty_) refresh_components();
  std::uint32_t max_label = 0;
  bool any = false;
  for (BrokerId b = 0; b < alive_.size(); ++b) {
    if (!alive_[b]) continue;
    any = true;
    max_label = std::max(max_label, component_[b]);
  }
  return any ? static_cast<std::size_t>(max_label) + 1 : 0;
}

}  // namespace psc::routing
