// BrokerNetwork — the distributed overlay: brokers + logical links driven by
// the discrete-event simulator. Implements subscription flooding with
// coverage-based pruning and reverse-path publication forwarding
// (paper, Section 2 and Figure 1), with full traffic accounting.
//
// Loss accounting: when a publication is injected, the network computes the
// ground-truth recipient set (every local subscription anywhere whose box
// contains the point, via direct evaluation) and compares it with the set
// that actually received a notification. A shortfall is a lost notification
// — the paper's probabilistic-error cost (Section 5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "routing/broker.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace psc::routing {

struct NetworkConfig {
  store::StoreConfig store;      ///< coverage policy + engine tuning
  sim::SimTime link_latency = 0.001;  ///< seconds per hop
  std::uint64_t seed = 0xfeedbeefULL;
  /// Shard count of every broker's local publication-match index
  /// (exec::ShardedStore). Purely a throughput knob: delivery decisions
  /// are identical for every value (see docs/ARCHITECTURE.md).
  std::size_t match_shards = 1;
};

class BrokerNetwork {
 public:
  explicit BrokerNetwork(NetworkConfig config = {});

  /// Adds a broker; ids are dense [0, broker_count).
  BrokerId add_broker();

  /// Adds an undirected link between two existing brokers.
  void connect(BrokerId a, BrokerId b);

  /// Builds the paper's Figure 1 topology: nine brokers B1..B9 (ids 0..8)
  /// wired as in the example. Returns the network for chaining.
  static BrokerNetwork figure1_topology(NetworkConfig config = {});

  /// Builds a chain B1-B2-...-Bn (Section 5 analysis topology).
  static BrokerNetwork chain_topology(std::size_t n, NetworkConfig config = {});

  /// Builds a random attachment tree: broker i (i >= 1) links to a
  /// uniformly random earlier broker. Produces skewed degree distributions
  /// (early brokers become hubs), the classic random-recursive-tree shape.
  /// Deterministic per (n, seed). Requires n > 0.
  static BrokerNetwork random_tree_topology(std::size_t n, std::uint64_t seed,
                                            NetworkConfig config = {});

  /// Builds rows x cols brokers laid out on a grid, routed over the grid's
  /// comb spanning tree (full first row + every vertical column edge), so
  /// the overlay stays acyclic: long row/column paths, high diameter
  /// (rows + cols - 2). Requires rows, cols > 0 and rows * cols > 1.
  static BrokerNetwork grid_topology(std::size_t rows, std::size_t cols,
                                     NetworkConfig config = {});

  /// Builds a random degree-regular graph (pairing model, rejecting
  /// self-loops / parallel edges / disconnected draws) and routes over its
  /// BFS spanning tree from broker 0: a bushy low-diameter tree whose node
  /// degrees never exceed `degree`. Deterministic per (n, degree, seed).
  /// Requires 2 <= degree < n and n * degree even.
  static BrokerNetwork random_regular_topology(std::size_t n, std::size_t degree,
                                               std::uint64_t seed,
                                               NetworkConfig config = {});

  /// Client subscribes at `broker`. The subscription floods immediately
  /// (events are processed to quiescence before returning).
  void subscribe(BrokerId broker, const core::Subscription& sub);

  /// Subscribes with an expiration time `ttl` seconds from now (paper,
  /// Section 5): every broker that receives the subscription arms its own
  /// expiry timer, so removal needs NO unsubscription messages. Expiry
  /// fires when simulated time advances past it (publish/run_until drive
  /// the clock).
  void subscribe_with_ttl(BrokerId broker, const core::Subscription& sub,
                          sim::SimTime ttl);

  /// Advances simulated time to `horizon`, firing due expiries.
  void advance_time(sim::SimTime horizon);

  [[nodiscard]] sim::SimTime now() const noexcept { return queue_.now(); }

  /// Client unsubscribes (id must have been subscribed).
  void unsubscribe(BrokerId broker, core::SubscriptionId id);

  /// Client publishes at `broker`; runs to quiescence. Returns ids of local
  /// subscriptions that received a notification.
  std::vector<core::SubscriptionId> publish(BrokerId broker,
                                            const core::Publication& pub);

  /// Publishes a batch at `broker`: all publications are injected at the
  /// same simulated instant (EventQueue batch dispatch) and the combined
  /// cascade runs to quiescence once, instead of one cascade per call.
  /// Returns the delivered ids per publication, each sorted/deduplicated —
  /// identical to calling publish() once per publication (publication
  /// handling never mutates routing state, so interleaving is invisible).
  std::vector<std::vector<core::SubscriptionId>> publish_batch(
      BrokerId broker, const std::vector<core::Publication>& pubs);

  [[nodiscard]] std::size_t broker_count() const noexcept { return brokers_.size(); }
  /// Live client subscriptions network-wide (TTL-expired ones excluded).
  [[nodiscard]] std::size_t local_subscription_count() const noexcept {
    return local_subs_.size();
  }
  [[nodiscard]] const Broker& broker(BrokerId id) const { return *brokers_.at(id); }
  [[nodiscard]] const sim::Metrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_.reset(); }

  /// Ground truth: ids of local subscriptions (anywhere) matching `pub`.
  [[nodiscard]] std::vector<core::SubscriptionId> expected_recipients(
      const core::Publication& pub) const;

  /// Serializes the WHOLE overlay — configuration, topology (per-broker
  /// neighbour lists in their original order), every broker's state
  /// (routing tables, link coverage stores incl. engine RNG streams,
  /// publication dedup tokens), client subscription registry with TTL
  /// expiries, the simulation clock, and the publication token counter —
  /// into one self-describing buffer ("PSCN" magic + format version; see
  /// docs/ARCHITECTURE.md, "Wire format").
  ///
  /// Precondition: the network is QUIESCENT — between client ops, with no
  /// cascade in flight (every public entry point runs its cascade to
  /// completion before returning, so this is the normal state). Pending
  /// events are then exactly the armed TTL expiry timers, which are
  /// derived state (local_subs_ expiries x routing tables) and are
  /// re-armed on restore rather than serialized.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_all() const;

  /// Rebuilds this network IN PLACE from a snapshot_all buffer: existing
  /// state (brokers, links, subscriptions, clock, pending events, metrics)
  /// is discarded and replaced wholesale. Throws wire::DecodeError on a
  /// malformed buffer, leaving the network in an unspecified but
  /// destructible state (callers recover by restoring a good snapshot or
  /// rebuilding from scratch). After a successful restore the network is
  /// decision-for-decision identical to the snapshotted one: replaying the
  /// same client ops yields the same delivered sets, messages, and
  /// suppression decisions. Metrics restart from zero (the churn driver
  /// splices them across the boundary).
  void restore_all(std::span<const std::uint8_t> bytes);

 private:
  NetworkConfig config_;
  sim::EventQueue queue_;
  std::vector<std::unique_ptr<Broker>> brokers_;

  struct LocalSub {
    BrokerId home;
    core::Subscription sub;
    /// Absolute expiry for TTL subscriptions. Promotion re-announcements
    /// must carry it: a promoted TTL subscription delivered without its
    /// expiry would never die at the receiving broker (ghost route).
    std::optional<sim::SimTime> expiry;
  };
  std::unordered_map<core::SubscriptionId, LocalSub> local_subs_;
  sim::Metrics metrics_;
  std::uint64_t publication_token_ = 0;
  /// Shared publish scratch for deliver_publication: the cascade is
  /// single-threaded and each hop finishes with the route before the next
  /// handler runs, so one network-wide scratch keeps every broker hop
  /// allocation-free once warm.
  Broker::PublishScratch publish_scratch_;

  void deliver_subscription(BrokerId at, core::Subscription sub, Origin origin,
                            std::optional<sim::SimTime> expiry = std::nullopt);

  /// Runs the message cascade triggered "now" to completion: every hop adds
  /// one link latency and the cascade depth is bounded by the broker count,
  /// so events beyond now + (brokers+1) * latency belong to armed timers,
  /// not to this cascade. Keeps publish/subscribe from fast-forwarding the
  /// clock into future expiries.
  void run_cascade();
  void deliver_unsubscription(BrokerId at, core::SubscriptionId id, Origin origin);
  /// Schedules a promotion re-announcement of `promoted` from `at` to
  /// `next`, carrying the subscription's TTL expiry (if any) so the
  /// receiver arms its own timer; no-op if the subscription is no longer
  /// live at this instant.
  void schedule_reannounce(BrokerId at, BrokerId next,
                           const core::Subscription& promoted);
  void deliver_publication(BrokerId at, core::Publication pub, Origin origin,
                           std::uint64_t token,
                           std::vector<core::SubscriptionId>* sink);
};

}  // namespace psc::routing
