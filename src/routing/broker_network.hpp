// BrokerNetwork — the distributed overlay: brokers + logical links driven by
// the discrete-event simulator. Implements subscription flooding with
// coverage-based pruning and reverse-path publication forwarding
// (paper, Section 2 and Figure 1), with full traffic accounting.
//
// Loss accounting: when a publication is injected, the network computes the
// ground-truth recipient set (every local subscription anywhere whose box
// contains the point, via direct evaluation) and compares it with the set
// that actually received a notification. A shortfall is a lost notification
// — the paper's probabilistic-error cost (Section 5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "routing/broker.hpp"
#include "routing/link_channel.hpp"
#include "routing/membership.hpp"
#include "routing/publish_pipeline.hpp"
#include "routing/sim_transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "wire/codec.hpp"

namespace psc::routing {

struct NetworkConfig {
  store::StoreConfig store;      ///< coverage policy + engine tuning
  sim::SimTime link_latency = 0.001;  ///< seconds per hop
  std::uint64_t seed = 0xfeedbeefULL;
  /// Shard count of every broker's local publication-match index
  /// (exec::ShardedStore). Purely a throughput knob: delivery decisions
  /// are identical for every value (see docs/ARCHITECTURE.md).
  std::size_t match_shards = 1;
  /// Routes batch publishes through the staged PublishPipeline (every
  /// broker keeps origin-partitioned publish lanes — one extra copy of
  /// its routed set). Purely a throughput knob like match_shards:
  /// delivered sets and message traffic are identical either way.
  /// Runtime-only: not serialized by snapshot_all and preserved across
  /// restore_all, mirroring how index runtime knobs are handled.
  bool pipelined_publish = false;
  /// Stage sizing for the pipeline (workers/queue depth/batch size).
  PublishPipelineOptions pipeline;
  /// Reliable-link protocol + fault injection (link.enabled routes every
  /// hop through LinkChannels; disabled = the perfect zero-loss wire, with
  /// the pre-existing direct-schedule hot path byte-for-byte intact).
  LinkConfig link;

  /// Fluent construction for the growing knob set — the preferred spelling
  /// at call sites that set more than one field (benches, soaks, drivers):
  ///
  ///   auto config = NetworkConfig::Builder()
  ///                     .seed(42)
  ///                     .link_latency(0.002)
  ///                     .pipelined(true, pipeline_options)
  ///                     .link(link_config)
  ///                     .build();
  ///
  /// Builder() starts from the defaulted NetworkConfig, so a builder that
  /// sets nothing builds exactly `NetworkConfig{}`. Aggregate designated
  /// initialization keeps working for terse literal configs.
  class Builder;
};

class NetworkConfig::Builder {
 public:
  Builder& store(store::StoreConfig value) {
    config_.store = value;
    return *this;
  }
  Builder& link_latency(sim::SimTime value) {
    config_.link_latency = value;
    return *this;
  }
  Builder& seed(std::uint64_t value) {
    config_.seed = value;
    return *this;
  }
  Builder& match_shards(std::size_t value) {
    config_.match_shards = value;
    return *this;
  }
  /// Enables (or disables) the staged publish pipeline, routing its stage
  /// sizing through in the same call so the two knobs cannot drift apart.
  Builder& pipelined(bool on, PublishPipelineOptions options = {}) {
    config_.pipelined_publish = on;
    config_.pipeline = options;
    return *this;
  }
  /// Installs the reliable-link protocol config wholesale (enabled flag,
  /// timers, fault rates) — the one knob struct LinkChannels consumes.
  Builder& link(const LinkConfig& value) {
    config_.link = value;
    return *this;
  }
  [[nodiscard]] NetworkConfig build() const { return config_; }

 private:
  NetworkConfig config_;
};

/// The consolidated publish surface: one request object covering the three
/// legacy entry-point shapes (single publication, same-source batch,
/// multi-source batch), so sim and TCP callers share one call. Each factory
/// preserves the exact semantics — and the exact event timeline — of the
/// legacy signature it wraps.
class PublishRequest {
 public:
  using SourcedPublication = std::pair<BrokerId, core::Publication>;

  /// One publication at `broker` (legacy publish(broker, pub)).
  static PublishRequest single(BrokerId broker, core::Publication pub);

  /// A batch injected at one simulated instant from one source (legacy
  /// publish_batch(broker, pubs)).
  static PublishRequest batch(BrokerId broker,
                              std::vector<core::Publication> pubs);

  /// A multi-source batch, one instant, pair order preserved (legacy
  /// publish_batch(span)). Owns its pairs.
  static PublishRequest multi_source(std::vector<SourcedPublication> pairs);

  /// Non-owning multi-source view: zero-copy over caller-held pairs, which
  /// must outlive the publish call.
  static PublishRequest view(std::span<const SourcedPublication> pairs);

  /// Publications in the request.
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  friend class BrokerNetwork;
  enum class Shape { kSingle, kSameSource, kMultiSource };

  [[nodiscard]] std::span<const SourcedPublication> pairs() const noexcept {
    return owned_pairs_.empty() ? view_ : std::span(owned_pairs_);
  }

  Shape shape_ = Shape::kSingle;
  BrokerId broker_ = 0;                  ///< kSingle / kSameSource
  core::Publication pub_;                ///< kSingle
  std::vector<core::Publication> pubs_;  ///< kSameSource
  std::vector<SourcedPublication> owned_pairs_;       ///< kMultiSource owning
  std::span<const SourcedPublication> view_;          ///< kMultiSource view
};

class BrokerNetwork {
 public:
  explicit BrokerNetwork(NetworkConfig config = {});

  /// Adds a broker; ids are dense [0, broker_count).
  BrokerId add_broker();

  /// Adds an undirected link between two existing brokers.
  void connect(BrokerId a, BrokerId b);

  /// Builds the paper's Figure 1 topology: nine brokers B1..B9 (ids 0..8)
  /// wired as in the example. Returns the network for chaining.
  static BrokerNetwork figure1_topology(NetworkConfig config = {});

  /// Builds a chain B1-B2-...-Bn (Section 5 analysis topology).
  static BrokerNetwork chain_topology(std::size_t n, NetworkConfig config = {});

  /// Builds a random attachment tree: broker i (i >= 1) links to a
  /// uniformly random earlier broker. Produces skewed degree distributions
  /// (early brokers become hubs), the classic random-recursive-tree shape.
  /// Deterministic per (n, seed). Requires n > 0.
  static BrokerNetwork random_tree_topology(std::size_t n, std::uint64_t seed,
                                            NetworkConfig config = {});

  /// Builds rows x cols brokers laid out on a grid, routed over the grid's
  /// comb spanning tree (full first row + every vertical column edge), so
  /// the overlay stays acyclic: long row/column paths, high diameter
  /// (rows + cols - 2). Requires rows, cols > 0 and rows * cols > 1.
  static BrokerNetwork grid_topology(std::size_t rows, std::size_t cols,
                                     NetworkConfig config = {});

  /// Builds a random degree-regular graph (pairing model, rejecting
  /// self-loops / parallel edges / disconnected draws) and routes over its
  /// BFS spanning tree from broker 0: a bushy low-diameter tree whose node
  /// degrees never exceed `degree`. Deterministic per (n, degree, seed).
  /// Requires 2 <= degree < n and n * degree even.
  static BrokerNetwork random_regular_topology(std::size_t n, std::size_t degree,
                                               std::uint64_t seed,
                                               NetworkConfig config = {});

  // --- runtime membership (live overlay mutation) -----------------------
  //
  // Every operation below mutates the overlay while it carries routing
  // state, runs the resulting repair traffic to quiescence before
  // returning, and keeps the LIVE link set a spanning forest of the alive
  // brokers (the forest invariant — see routing/membership.hpp; an op that
  // would close a live cycle throws std::logic_error). The first call
  // builds the membership LinkState from the current topology, which must
  // itself be acyclic at that point. Preconditions mirror LinkState's;
  // all ops assume a quiescent network (between client ops), like
  // snapshot_all.
  //
  // Protocol summary (docs/ARCHITECTURE.md, "Runtime membership"):
  //   * link detach (fail_link, crash, leave): both surviving endpoints
  //     purge every route learned over the dead link via cascading
  //     unsubscriptions, so each partition's routing state immediately
  //     describes only subscriptions reachable inside it;
  //   * link attach (heal_link, join, repair): each endpoint re-announces
  //     its full routing table over the new link in canonical id order
  //     through a fresh coverage store, flooding only the uncovered ones;
  //   * node replacement: the crashed broker is rebuilt from a (possibly
  //     stale) snapshot image pruned to local-origin routes still in the
  //     client registry, the registry diff is replayed as fresh local
  //     subscriptions (clients re-registering), and every former link that
  //     still bridges distinct components is healed.

  /// Joins a new broker to the overlay, attached to `attach_to` (which
  /// re-announces its routing table over the new link). Returns the new
  /// broker's id (dense, == broker_count() before the call).
  BrokerId add_peer(BrokerId attach_to);

  /// Graceful departure of `broker`: its local clients unsubscribe (in
  /// ascending id order), every neighbour purges the routes it learned
  /// from it, and the overlay is repaired by starring its former
  /// neighbours (lowest id becomes the hub), with re-announcement over
  /// each repair link. The id stays allocated but permanently dead.
  void remove_peer(BrokerId broker);

  /// Partitions the overlay: the live link (a, b) goes down, both sides
  /// purge the routes learned over it. The link stays known (failed) and
  /// can come back via heal_link or a future replacement.
  void fail_link(BrokerId a, BrokerId b);

  /// Brings a failed (or provisioned standby) link up, with mutual full
  /// re-announcement. Throws std::logic_error if the endpoints are already
  /// connected (forest invariant) or either is dead.
  void heal_link(BrokerId a, BrokerId b);

  /// Provisions a standby bridge: a link that exists but is down, eligible
  /// for heal_link when a partition makes it useful. This is how cyclic
  /// universes (rings, clustered meshes with rotating bridges) are
  /// expressed over a forest overlay.
  void add_standby_link(BrokerId a, BrokerId b);

  /// Crash-stop of `broker`: its state is lost (the broker object is
  /// wiped), every incident live link fails, and each former neighbour
  /// purges the routes it learned from it. Client subscriptions homed at
  /// the crashed broker stay in the registry — their clients still believe
  /// they are subscribed; they are simply unreachable until replace_peer
  /// (and their TTLs keep governing them throughout).
  void crash_peer(BrokerId broker);

  struct ReplaceOutcome {
    std::size_t restored_routes = 0;    ///< local routes revived from the image
    std::size_t gap_subs_replayed = 0;  ///< registry-diff client re-registrations
    std::vector<std::pair<BrokerId, BrokerId>> healed_links;
  };

  /// Replaces a crashed broker from a Broker::snapshot() image (taken any
  /// time before the crash; staleness is safe — the image is pruned to
  /// local-origin routes still in the client registry, and registry
  /// entries missing from it are replayed as fresh subscriptions). An
  /// empty image is valid and means a full registry replay. After the
  /// restore, every former link still bridging distinct components is
  /// healed with mutual re-announcement.
  ReplaceOutcome replace_peer(BrokerId broker,
                              std::span<const std::uint8_t> image);

  /// True while `broker` is alive (always true before the first
  /// membership operation engages tracking).
  [[nodiscard]] bool is_alive(BrokerId broker) const;

  /// The membership link-state (alive set, live/failed links, components).
  /// Throws std::logic_error before membership is engaged.
  [[nodiscard]] const LinkState& link_state() const;
  [[nodiscard]] bool membership_active() const noexcept {
    return link_state_.has_value();
  }

  /// The overlay's static shape for workload generation: broker count,
  /// live links, and standby bridges (normalized (min, max), ascending).
  [[nodiscard]] MembershipUniverse universe() const;

  /// Ghost-route audit: routing-table entries on alive brokers whose
  /// subscription id is no longer in the client registry. Zero at every
  /// quiescent instant is the membership correctness invariant the soaks
  /// and tier-1 tests gate on.
  [[nodiscard]] std::size_t ghost_route_count() const;

  /// Client subscribes at `broker`. The subscription floods immediately
  /// (events are processed to quiescence before returning).
  void subscribe(BrokerId broker, const core::Subscription& sub);

  /// Subscribes with an expiration time `ttl` seconds from now (paper,
  /// Section 5): every broker that receives the subscription arms its own
  /// expiry timer, so removal needs NO unsubscription messages. Expiry
  /// fires when simulated time advances past it (publish/run_until drive
  /// the clock).
  void subscribe_with_ttl(BrokerId broker, const core::Subscription& sub,
                          sim::SimTime ttl);

  /// Advances simulated time to `horizon`, firing due expiries.
  void advance_time(sim::SimTime horizon);

  [[nodiscard]] sim::SimTime now() const noexcept { return queue_.now(); }

  /// Client unsubscribes (id must have been subscribed).
  void unsubscribe(BrokerId broker, core::SubscriptionId id);

  /// THE publish entry point: every request shape (single, same-source
  /// batch, multi-source batch — see PublishRequest) runs to quiescence and
  /// returns the delivered ids per publication, sorted/deduplicated, in
  /// request order. Delivered sets are identical to calling the single
  /// form once per publication (publication handling never mutates routing
  /// state); batches are injected at one simulated instant so the combined
  /// cascade runs once. With config.pipelined_publish the source-hop
  /// matching of batch shapes runs through the staged PublishPipeline.
  std::vector<std::vector<core::SubscriptionId>> publish(
      const PublishRequest& request);

  /// Deprecated shim for publish(PublishRequest::single(broker, pub)):
  /// kept for existing call sites; prefer the request form.
  std::vector<core::SubscriptionId> publish(BrokerId broker,
                                            const core::Publication& pub);

  /// Deprecated shim for publish(PublishRequest::batch(...)); prefer the
  /// request form.
  std::vector<std::vector<core::SubscriptionId>> publish_batch(
      BrokerId broker, const std::vector<core::Publication>& pubs);

  /// Deprecated shim for publish(PublishRequest::view(pubs)); prefer the
  /// request form.
  std::vector<std::vector<core::SubscriptionId>> publish_batch(
      std::span<const std::pair<BrokerId, core::Publication>> pubs);

  // --- unreliable links --------------------------------------------------

  /// True when hops run through the reliable link protocol over a faulty
  /// wire (NetworkConfig::link.enabled).
  [[nodiscard]] bool lossy_links() const noexcept { return config_.link.enabled; }

  /// Installs scripted burst-loss windows (absolute sim-time, both
  /// directions of each listed link) into the fault models. Replaces any
  /// prior schedule. No-op scheduling is fine on a perfect-wire network —
  /// the windows only matter once link.enabled routes traffic through the
  /// channels.
  void set_link_bursts(std::vector<LinkChannels::BurstWindow> bursts);

  /// Links the reliable protocol gave up on since the last call (retry cap
  /// exhausted -> escalated into fail_link), as normalized (min, max)
  /// pairs in escalation order. A differential driver mirrors these into
  /// its oracle's fail_link before comparing delivered sets.
  [[nodiscard]] std::vector<std::pair<BrokerId, BrokerId>> take_escalated_links();

  [[nodiscard]] std::size_t broker_count() const noexcept { return brokers_.size(); }
  /// Live client subscriptions network-wide (TTL-expired ones excluded).
  [[nodiscard]] std::size_t local_subscription_count() const noexcept {
    return local_subs_.size();
  }
  [[nodiscard]] const Broker& broker(BrokerId id) const { return *brokers_.at(id); }
  [[nodiscard]] const sim::Metrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_.reset(); }

  /// Ground truth: ids of local subscriptions (anywhere) matching `pub`,
  /// ignoring membership (the pre-membership accounting contract).
  [[nodiscard]] std::vector<core::SubscriptionId> expected_recipients(
      const core::Publication& pub) const;

  /// Component-aware ground truth: ids of matching local subscriptions
  /// whose home broker is alive and reachable from `from` over the live
  /// link set. Identical to the overload above until membership is
  /// engaged (one component, everyone alive). This is what publish()'s
  /// loss accounting uses — a partition is not a loss, it is a smaller
  /// ground-truth set.
  [[nodiscard]] std::vector<core::SubscriptionId> expected_recipients(
      BrokerId from, const core::Publication& pub) const;

  /// Serializes the WHOLE overlay — configuration, topology (per-broker
  /// neighbour lists in their original order), every broker's state
  /// (routing tables, link coverage stores incl. engine RNG streams,
  /// publication dedup tokens), client subscription registry with TTL
  /// expiries, the simulation clock, and the publication token counter —
  /// into one self-describing buffer ("PSCN" magic + format version; see
  /// docs/ARCHITECTURE.md, "Wire format").
  ///
  /// Precondition: the network is QUIESCENT — between client ops, with no
  /// cascade in flight (every public entry point runs its cascade to
  /// completion before returning, so this is the normal state). Pending
  /// events are then exactly the armed TTL expiry timers, which are
  /// derived state (local_subs_ expiries x routing tables) and are
  /// re-armed on restore rather than serialized.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_all() const;

  /// Rebuilds this network IN PLACE from a snapshot_all buffer: existing
  /// state (brokers, links, subscriptions, clock, pending events, metrics)
  /// is discarded and replaced wholesale. Throws wire::DecodeError on a
  /// malformed buffer, leaving the network in an unspecified but
  /// destructible state (callers recover by restoring a good snapshot or
  /// rebuilding from scratch). After a successful restore the network is
  /// decision-for-decision identical to the snapshotted one: replaying the
  /// same client ops yields the same delivered sets, messages, and
  /// suppression decisions. Metrics restart from zero (the churn driver
  /// splices them across the boundary).
  void restore_all(std::span<const std::uint8_t> bytes);

 private:
  NetworkConfig config_;
  sim::EventQueue queue_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  /// Engaged by the first membership operation (or add_standby_link);
  /// nullopt means the overlay is static and pre-membership semantics
  /// apply everywhere.
  std::optional<LinkState> link_state_;

  struct LocalSub {
    BrokerId home;
    core::Subscription sub;
    /// Absolute expiry for TTL subscriptions. Promotion re-announcements
    /// must carry it: a promoted TTL subscription delivered without its
    /// expiry would never die at the receiving broker (ghost route).
    std::optional<sim::SimTime> expiry;
  };
  std::unordered_map<core::SubscriptionId, LocalSub> local_subs_;
  sim::Metrics metrics_;
  std::uint64_t publication_token_ = 0;
  /// Shared publish scratch for deliver_publication: the cascade is
  /// single-threaded and each hop finishes with the route before the next
  /// handler runs, so one network-wide scratch keeps every broker hop
  /// allocation-free once warm.
  Broker::PublishScratch publish_scratch_;
  /// Shared staged pipeline (config_.pipelined_publish): one pipeline —
  /// and one set of stage workers — serves every broker, retargeted per
  /// batch. Built lazily on the first pipelined publish_batch.
  std::unique_ptr<PublishPipeline> pipeline_;
  std::vector<Broker::PublicationRoute> pipeline_routes_;

  /// The hop-delivery transport (the Transport seam): SimTransport over
  /// the event queue — the perfect wire, or LinkChannels when
  /// config_.link.enabled. Built lazily on first use (its callbacks close
  /// over `this`, and topology factories return networks by value).
  /// Runtime-only: never serialized; restore_all discards and rebuilds so
  /// both ends of every link protocol stream restart at sequence zero
  /// together.
  std::unique_ptr<SimTransport> transport_;
  /// Links whose retry cap fired mid-cascade; drained into fail_link at
  /// the next quiescent point (escalating inside the cascade would re-enter
  /// broker state mid-flight).
  std::vector<std::pair<BrokerId, BrokerId>> pending_escalations_;
  /// Escalations already applied, awaiting take_escalated_links().
  std::vector<std::pair<BrokerId, BrokerId>> escalated_links_;
  bool draining_escalations_ = false;
  /// Publication delivery sinks by token, for the transport dispatch path
  /// (a wire frame cannot carry a pointer). Entries live for one publish
  /// entry-point call; stale lookups resolve to a null sink.
  std::unordered_map<std::uint64_t, std::vector<core::SubscriptionId>*> pub_sinks_;

  void deliver_subscription(BrokerId at, core::Subscription sub, Origin origin,
                            std::optional<sim::SimTime> expiry = std::nullopt);

  /// Runs the message cascade triggered "now" to completion: every hop adds
  /// one link latency and the cascade depth is bounded by the broker count,
  /// so events beyond now + (brokers+1) * latency belong to armed timers,
  /// not to this cascade. Keeps publish/subscribe from fast-forwarding the
  /// clock into future expiries.
  void run_cascade();
  void deliver_unsubscription(BrokerId at, core::SubscriptionId id, Origin origin);
  /// Schedules a promotion re-announcement of `promoted` from `at` to
  /// `next`, carrying the subscription's TTL expiry (if any) so the
  /// receiver arms its own timer; no-op if the subscription is no longer
  /// live at this instant.
  void schedule_reannounce(BrokerId at, BrokerId next,
                           const core::Subscription& promoted);
  void deliver_publication(BrokerId at, core::Publication pub, Origin origin,
                           std::uint64_t token,
                           std::vector<core::SubscriptionId>* sink);

  /// Constructs broker `id` with the same derived seed original
  /// construction would have used (shared by add_broker, crash wipes, and
  /// restore_all). Pipelined networks get their publish lanes here, so
  /// crash wipes and restores keep the lane mirror in lockstep.
  [[nodiscard]] std::unique_ptr<Broker> make_broker(BrokerId id) const;

  PublishPipeline& ensure_pipeline();
  /// The three publish shapes behind publish(PublishRequest) — each is the
  /// former public entry point's body verbatim, so the legacy shims and
  /// the request form share one timeline-identical implementation.
  std::vector<core::SubscriptionId> publish_one(BrokerId broker,
                                                const core::Publication& pub);
  std::vector<std::vector<core::SubscriptionId>> publish_same_source(
      BrokerId broker, const std::vector<core::Publication>& pubs);
  std::vector<std::vector<core::SubscriptionId>> publish_multi_source(
      std::span<const std::pair<BrokerId, core::Publication>> pubs);
  /// Source-hop effects of one precomputed route, in sequential-injection
  /// shape: assign the next token, mark it seen at the source, sink the
  /// local matches, and schedule one hop per destination.
  void apply_source_route(BrokerId source, const core::Publication& pub,
                          const Broker::PublicationRoute& route,
                          std::vector<core::SubscriptionId>* sink);
  /// Post-cascade accounting shared by the publish entry points: sorts and
  /// dedups `ids` in place and tallies delivered/lost against the
  /// component-aware expected set.
  void account_delivery(BrokerId source, const core::Publication& pub,
                        std::vector<core::SubscriptionId>& ids);

  /// Builds the transport on first send (callbacks close over `this`, so
  /// construction is deferred past the moveable-config phase).
  SimTransport& ensure_transport();
  /// Transport frame handler: routes an arrived Announcement to the
  /// matching deliver_* handler (the receiving half of each send site).
  void dispatch_frame(BrokerId from, BrokerId to, const wire::Announcement& msg);
  /// Applies pending retry-cap escalations as fail_link calls, looping
  /// until none remain (a purge cascade can escalate further links).
  /// Re-entrant calls (fail_link runs inside the drain) are no-ops.
  void drain_escalations();

  /// Builds link_state_ from the current topology on first membership use;
  /// throws std::logic_error if the live topology is cyclic.
  void ensure_membership();
  void require_alive(BrokerId broker, const char* what) const;

  /// Detach-side purge: removes the (at, dead) neighbour link at `at` and
  /// issues a cascading unsubscription (ascending id) for every route `at`
  /// learned over it. Caller runs the cascade.
  void detach_and_purge(BrokerId at, BrokerId dead);

  /// Attach-side re-announcement: floods `from`'s uncovered routes over
  /// the fresh link to `to`, carrying registry TTL expiries. Caller runs
  /// the cascade.
  void announce_over(BrokerId from, BrokerId to);

  /// Brings a link up at the broker layer (both neighbour lists + mutual
  /// re-announcement) and runs the cascade. Link-state bookkeeping is the
  /// caller's (it differs per event kind).
  void attach_link(BrokerId a, BrokerId b);
};

}  // namespace psc::routing
