#include "routing/broker_network.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/snapshot.hpp"

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

BrokerNetwork::BrokerNetwork(NetworkConfig config) : config_(config) {}

std::unique_ptr<Broker> BrokerNetwork::make_broker(BrokerId id) const {
  std::uint64_t seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1));
  auto broker = std::make_unique<Broker>(id, config_.store,
                                         util::splitmix64(seed),
                                         config_.match_shards);
  if (config_.pipelined_publish) broker->enable_publish_lanes();
  return broker;
}

PublishPipeline& BrokerNetwork::ensure_pipeline() {
  if (!pipeline_) {
    pipeline_ = std::make_unique<PublishPipeline>(config_.pipeline);
  }
  return *pipeline_;
}

SimTransport& BrokerNetwork::ensure_transport() {
  if (!transport_) {
    transport_ = std::make_unique<SimTransport>(
        queue_, metrics_, config_.link, config_.link_latency, config_.seed,
        [this](BrokerId a, BrokerId b) {
          pending_escalations_.emplace_back(a, b);
        });
    transport_->set_frame_handler(
        [this](BrokerId from, BrokerId to, const wire::Announcement& msg) {
          dispatch_frame(from, to, msg);
        });
  }
  return *transport_;
}

void BrokerNetwork::dispatch_frame(BrokerId from, BrokerId to,
                                   const wire::Announcement& msg) {
  switch (msg.kind) {
    case wire::Announcement::Kind::kSubscribe:
      deliver_subscription(to, msg.sub, Origin{false, from}, msg.expiry);
      break;
    case wire::Announcement::Kind::kUnsubscribe:
      deliver_unsubscription(to, msg.id, Origin{false, from});
      break;
    case wire::Announcement::Kind::kPublication: {
      const auto sink = pub_sinks_.find(msg.token);
      deliver_publication(to, msg.pub, Origin{false, from}, msg.token,
                          sink == pub_sinks_.end() ? nullptr : sink->second);
      break;
    }
    case wire::Announcement::Kind::kMembership:
      break;  // membership ops are driver-issued, never link traffic
  }
}

void BrokerNetwork::drain_escalations() {
  if (draining_escalations_ || pending_escalations_.empty()) return;
  draining_escalations_ = true;
  // fail_link purges can themselves escalate more links (their cascades
  // run over the same faulty wire), so loop until the queue drains.
  while (!pending_escalations_.empty()) {
    const auto [a, b] = pending_escalations_.front();
    pending_escalations_.erase(pending_escalations_.begin());
    ensure_membership();
    if (!link_state_->has_link(a, b)) continue;  // already down or removed
    escalated_links_.push_back(std::minmax(a, b));
    fail_link(a, b);
  }
  draining_escalations_ = false;
}

std::vector<std::pair<BrokerId, BrokerId>> BrokerNetwork::take_escalated_links() {
  return std::exchange(escalated_links_, {});
}

void BrokerNetwork::set_link_bursts(std::vector<LinkChannels::BurstWindow> bursts) {
  if (!config_.link.enabled) return;
  ensure_transport().set_bursts(std::move(bursts));
}

BrokerId BrokerNetwork::add_broker() {
  const auto id = static_cast<BrokerId>(brokers_.size());
  brokers_.push_back(make_broker(id));
  // Keep the membership link-state in lockstep once it is engaged.
  if (link_state_) (void)link_state_->add_broker();
  return id;
}

void BrokerNetwork::connect(BrokerId a, BrokerId b) {
  if (a == b) throw std::invalid_argument("BrokerNetwork::connect: self-link");
  brokers_.at(a)->add_neighbor(b);
  brokers_.at(b)->add_neighbor(a);
  if (link_state_) link_state_->add_link(a, b);
}

BrokerNetwork BrokerNetwork::figure1_topology(NetworkConfig config) {
  // Paper Figure 1: nine brokers; B3 and B4 form the backbone.
  // Links: B1-B3, B2-B3, B3-B4, B4-B5, B4-B6, B4-B7, B7-B8, B7-B9.
  BrokerNetwork net(config);
  for (int i = 0; i < 9; ++i) net.add_broker();
  auto id = [](int broker_number) { return static_cast<BrokerId>(broker_number - 1); };
  net.connect(id(1), id(3));
  net.connect(id(2), id(3));
  net.connect(id(3), id(4));
  net.connect(id(4), id(5));
  net.connect(id(4), id(6));
  net.connect(id(4), id(7));
  net.connect(id(7), id(8));
  net.connect(id(7), id(9));
  return net;
}

BrokerNetwork BrokerNetwork::chain_topology(std::size_t n, NetworkConfig config) {
  if (n == 0) throw std::invalid_argument("chain_topology: n must be > 0");
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.connect(static_cast<BrokerId>(i), static_cast<BrokerId>(i + 1));
  }
  return net;
}

BrokerNetwork BrokerNetwork::random_tree_topology(std::size_t n,
                                                  std::uint64_t seed,
                                                  NetworkConfig config) {
  if (n == 0) throw std::invalid_argument("random_tree_topology: n must be > 0");
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  util::Rng rng(seed);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<BrokerId>(rng.next_below(i));
    net.connect(static_cast<BrokerId>(i), parent);
  }
  return net;
}

BrokerNetwork BrokerNetwork::grid_topology(std::size_t rows, std::size_t cols,
                                           NetworkConfig config) {
  if (rows == 0 || cols == 0 || rows * cols < 2) {
    throw std::invalid_argument("grid_topology: need rows, cols > 0 and > 1 broker");
  }
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < rows * cols; ++i) net.add_broker();
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<BrokerId>(r * cols + c);
  };
  // Comb spanning tree of the grid: the first row is the spine, every
  // column hangs off it. Acyclic by construction, diameter rows + cols - 2.
  for (std::size_t c = 0; c + 1 < cols; ++c) net.connect(at(0, c), at(0, c + 1));
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r + 1 < rows; ++r) {
      net.connect(at(r, c), at(r + 1, c));
    }
  }
  return net;
}

BrokerNetwork BrokerNetwork::random_regular_topology(std::size_t n,
                                                     std::size_t degree,
                                                     std::uint64_t seed,
                                                     NetworkConfig config) {
  if (degree < 2 || degree >= n || (n * degree) % 2 != 0) {
    throw std::invalid_argument(
        "random_regular_topology: need 2 <= degree < n and n * degree even");
  }
  util::Rng rng(seed);
  // Pairing model: shuffle n * degree stubs, pair them consecutively, and
  // reject draws with self-loops, parallel edges, or a disconnected graph.
  // Acceptance probability is bounded away from zero for fixed degree, so
  // a few hundred attempts is overkill; the throw is a config-error guard.
  std::vector<std::vector<std::size_t>> adjacency;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::size_t> stubs;
    stubs.reserve(n * degree);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t k = 0; k < degree; ++k) stubs.push_back(v);
    }
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.next_below(i + 1)]);
    }
    adjacency.assign(n, {});
    bool ok = true;
    for (std::size_t i = 0; ok && i < stubs.size(); i += 2) {
      const std::size_t a = stubs[i], b = stubs[i + 1];
      if (a == b) ok = false;
      for (const std::size_t peer : adjacency[a]) {
        if (peer == b) ok = false;
      }
      if (ok) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
      }
    }
    if (!ok) continue;
    // BFS from 0: connectivity check and spanning tree in one pass. The
    // overlay routes over the tree (tree edges only), keeping it acyclic;
    // node degrees are bounded by the graph degree.
    std::vector<BrokerId> parent(n, kInvalidBroker);
    std::vector<char> seen(n, 0);
    std::vector<std::size_t> frontier{0};
    seen[0] = 1;
    std::size_t reached = 1;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const std::size_t v = frontier[head];
      // Deterministic visit order within a node's adjacency list.
      for (const std::size_t peer : adjacency[v]) {
        if (seen[peer]) continue;
        seen[peer] = 1;
        parent[peer] = static_cast<BrokerId>(v);
        frontier.push_back(peer);
        ++reached;
      }
    }
    if (reached != n) continue;
    BrokerNetwork net(config);
    for (std::size_t i = 0; i < n; ++i) net.add_broker();
    for (std::size_t v = 1; v < n; ++v) {
      net.connect(static_cast<BrokerId>(v), parent[v]);
    }
    return net;
  }
  throw std::runtime_error(
      "random_regular_topology: no connected simple draw in 1000 attempts");
}

// --- runtime membership -------------------------------------------------

void BrokerNetwork::ensure_membership() {
  if (link_state_) return;
  LinkState state;
  for (std::size_t b = 0; b < brokers_.size(); ++b) (void)state.add_broker();
  // Normalize the neighbour lists into an undirected link set; add_link
  // enforces the forest invariant, so a cyclic static topology is rejected
  // here — membership repair (purge-on-detach) is only correct on trees.
  std::set<std::pair<BrokerId, BrokerId>> links;
  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    for (const BrokerId neighbor : brokers_[b]->neighbors()) {
      links.insert(std::minmax(static_cast<BrokerId>(b), neighbor));
    }
  }
  for (const auto& [a, b] : links) state.add_link(a, b);
  link_state_.emplace(std::move(state));
}

void BrokerNetwork::require_alive(BrokerId broker, const char* what) const {
  if (broker >= brokers_.size()) {
    throw std::invalid_argument(std::string("BrokerNetwork::") + what +
                                ": unknown broker");
  }
  if (link_state_ && !link_state_->is_alive(broker)) {
    throw std::invalid_argument(std::string("BrokerNetwork::") + what +
                                ": broker is not alive");
  }
}

bool BrokerNetwork::is_alive(BrokerId broker) const {
  if (broker >= brokers_.size()) {
    throw std::invalid_argument("BrokerNetwork::is_alive: unknown broker");
  }
  return !link_state_ || link_state_->is_alive(broker);
}

const LinkState& BrokerNetwork::link_state() const {
  if (!link_state_) {
    throw std::logic_error("BrokerNetwork::link_state: membership not engaged");
  }
  return *link_state_;
}

MembershipUniverse BrokerNetwork::universe() const {
  MembershipUniverse universe;
  universe.brokers = brokers_.size();
  if (link_state_) {
    universe.links.assign(link_state_->live_links().begin(),
                          link_state_->live_links().end());
    universe.standby.assign(link_state_->failed_links().begin(),
                            link_state_->failed_links().end());
    return universe;
  }
  std::set<std::pair<BrokerId, BrokerId>> links;
  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    for (const BrokerId neighbor : brokers_[b]->neighbors()) {
      links.insert(std::minmax(static_cast<BrokerId>(b), neighbor));
    }
  }
  universe.links.assign(links.begin(), links.end());
  return universe;
}

std::size_t BrokerNetwork::ghost_route_count() const {
  std::size_t ghosts = 0;
  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    if (link_state_ && !link_state_->is_alive(static_cast<BrokerId>(b))) {
      continue;  // dead brokers are wiped; their tables are vacuously clean
    }
    for (const SubscriptionId sid : brokers_[b]->routed_ids()) {
      if (local_subs_.count(sid) == 0) ++ghosts;
    }
  }
  return ghosts;
}

void BrokerNetwork::detach_and_purge(BrokerId at, BrokerId dead) {
  // Kill the channel state with the link: in-flight frames on a detached
  // link must never arrive, and a future heal restarts both streams at
  // sequence zero. (Idempotent — both endpoints' detaches may call this.)
  if (transport_) transport_->reset_link(at, dead);
  brokers_.at(at)->remove_neighbor(dead);
  // Every route learned over the dead link describes a subscription that
  // is no longer reachable through this endpoint: purge it with the normal
  // unsubscription cascade (ascending id for determinism — the routing
  // table iterates in hash order). The origin marks the dead link so the
  // cascade never tries to cross it (it is already detached anyway).
  std::vector<SubscriptionId> ids =
      brokers_.at(at)->subscriptions_from(Origin{false, dead});
  std::sort(ids.begin(), ids.end());
  for (const SubscriptionId sid : ids) {
    deliver_unsubscription(at, sid, Origin{false, dead});
  }
}

void BrokerNetwork::announce_over(BrokerId from, BrokerId to) {
  Broker::AnnounceOutcome outcome = brokers_.at(from)->announce_all_to(to);
  metrics_.subscriptions_suppressed += outcome.suppressed;
  for (Subscription& sub : outcome.announce) {
    // Re-announcements carry the registry's TTL expiry, exactly like a
    // promotion re-announcement. A routed id missing from the registry is
    // a ghost (gated to zero elsewhere); skip rather than spread it.
    const auto live = local_subs_.find(sub.id());
    if (live == local_subs_.end()) continue;
    const std::optional<sim::SimTime> expiry = live->second.expiry;
    ++metrics_.subscription_messages;
    ++metrics_.reannounced_subscriptions;
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kSubscribe;
    msg.from = from;
    msg.sub = std::move(sub);
    msg.expiry = expiry;
    ensure_transport().send_frame(from, to, msg);
  }
}

void BrokerNetwork::attach_link(BrokerId a, BrokerId b) {
  // Fresh link incarnation: both directed streams restart at sequence zero
  // and anything in flight from a previous incarnation goes stale.
  if (transport_) transport_->reset_link(a, b);
  brokers_.at(a)->add_neighbor(b);
  brokers_.at(b)->add_neighbor(a);
  announce_over(a, b);
  announce_over(b, a);
  run_cascade();
}

BrokerId BrokerNetwork::add_peer(BrokerId attach_to) {
  ensure_membership();
  require_alive(attach_to, "add_peer");
  ++metrics_.membership_events;
  const BrokerId id = add_broker();  // syncs link_state_'s broker count
  link_state_->add_link(attach_to, id);
  attach_link(attach_to, id);
  drain_escalations();
  return id;
}

void BrokerNetwork::remove_peer(BrokerId broker) {
  ensure_membership();
  require_alive(broker, "remove_peer");
  ++metrics_.membership_events;
  // 1. Graceful departure takes its clients with it: unsubscribe every
  //    registry entry homed here (ascending id), full cascade each.
  std::vector<SubscriptionId> homed;
  for (const auto& [sid, local] : local_subs_) {
    if (local.home == broker) homed.push_back(sid);
  }
  std::sort(homed.begin(), homed.end());
  for (const SubscriptionId sid : homed) unsubscribe(broker, sid);
  // 2. Link-state repair plan (flips the broker dead, removes its links,
  //    returns the star-repair links over its former neighbours).
  const std::vector<BrokerId> former = link_state_->neighbors(broker);
  const auto repairs = link_state_->remove_peer(broker);
  // 3. Every former neighbour purges what it learned from the leaver; the
  //    leaver's own state dies with it.
  for (const BrokerId neighbor : former) detach_and_purge(neighbor, broker);
  run_cascade();
  brokers_[broker] = make_broker(broker);
  // 4. Bring the repair links up with mutual re-announcement.
  for (const auto& [a, b] : repairs) attach_link(a, b);
  drain_escalations();
}

void BrokerNetwork::fail_link(BrokerId a, BrokerId b) {
  ensure_membership();
  ++metrics_.membership_events;
  link_state_->fail_link(a, b);
  detach_and_purge(a, b);
  detach_and_purge(b, a);
  run_cascade();
  drain_escalations();
}

void BrokerNetwork::heal_link(BrokerId a, BrokerId b) {
  ensure_membership();
  ++metrics_.membership_events;
  link_state_->heal_link(a, b);
  attach_link(a, b);
  drain_escalations();
}

void BrokerNetwork::add_standby_link(BrokerId a, BrokerId b) {
  ensure_membership();
  link_state_->add_standby(a, b);
}

void BrokerNetwork::crash_peer(BrokerId broker) {
  ensure_membership();
  require_alive(broker, "crash_peer");
  ++metrics_.membership_events;
  const auto downed = link_state_->crash_peer(broker);
  // Crash-stop: state is lost wholesale. Registry entries homed here stay
  // (their clients are unaware); TTL timers in the queue keep firing and
  // resolve against the fresh broker as no-ops.
  brokers_[broker] = make_broker(broker);
  for (const auto& [a, b] : downed) {
    detach_and_purge(a == broker ? b : a, broker);
  }
  run_cascade();
  drain_escalations();
}

BrokerNetwork::ReplaceOutcome BrokerNetwork::replace_peer(
    BrokerId broker, std::span<const std::uint8_t> image) {
  ensure_membership();
  if (broker >= brokers_.size()) {
    throw std::invalid_argument("BrokerNetwork::replace_peer: unknown broker");
  }
  if (link_state_->is_alive(broker)) {
    throw std::logic_error("BrokerNetwork::replace_peer: broker is alive");
  }
  ++metrics_.membership_events;
  ReplaceOutcome outcome;
  outcome.healed_links = link_state_->replace_peer(broker);

  // Prune the image to local-origin routes whose client subscription is
  // still registered here: non-local routes describe an overlay that has
  // since been repaired around the crash (re-announcement over the healed
  // links rebuilds them), and departed/expired clients must stay gone.
  Broker::Snapshot pruned;
  pruned.id = broker;
  if (!image.empty()) {
    wire::ByteReader in(image);
    wire::read_frame_header(in, wire::kBrokerSnapshotMagic, "broker");
    const Broker::Snapshot snapshot = wire::read_broker_snapshot(in);
    if (!in.at_end()) {
      throw wire::DecodeError("wire: trailing bytes after broker snapshot");
    }
    if (snapshot.id != broker) {
      throw std::invalid_argument(
          "BrokerNetwork::replace_peer: image belongs to another broker");
    }
    for (const Broker::Snapshot::RouteRecord& record : snapshot.routes) {
      if (!record.origin.local) continue;
      const auto live = local_subs_.find(record.sub.id());
      if (live == local_subs_.end() || live->second.home != broker) continue;
      pruned.routes.push_back(record);
    }
  }
  brokers_[broker] = make_broker(broker);
  brokers_[broker]->import_snapshot(pruned);
  outcome.restored_routes = pruned.routes.size();

  // Registry-diff gap replay: clients that subscribed after the image was
  // taken re-register (ascending id). The broker is still link-less, so
  // these stay local until the heals below flood them out. The original
  // TTL timers are still armed in the queue and now resolve against the
  // replacement, so no re-arming is needed.
  std::vector<SubscriptionId> homed;
  for (const auto& [sid, local] : local_subs_) {
    if (local.home == broker) homed.push_back(sid);
  }
  std::sort(homed.begin(), homed.end());
  for (const SubscriptionId sid : homed) {
    if (brokers_[broker]->routes(sid)) continue;
    const LocalSub& local = local_subs_.at(sid);
    deliver_subscription(broker, local.sub, Origin{true, kInvalidBroker},
                         local.expiry);
    ++outcome.gap_subs_replayed;
  }
  run_cascade();

  // Rejoin every partition the crash created that is still open.
  for (const auto& [a, b] : outcome.healed_links) attach_link(a, b);
  drain_escalations();
  return outcome;
}

void BrokerNetwork::deliver_subscription(BrokerId at, Subscription sub,
                                         Origin origin,
                                         std::optional<sim::SimTime> expiry) {
  std::uint64_t suppressed = 0;
  const std::vector<BrokerId> forward_to =
      brokers_.at(at)->handle_subscription(sub, origin, &suppressed);
  metrics_.subscriptions_suppressed += suppressed;
  // Each broker arms its own timer — expiry removes the subscription
  // everywhere with zero unsubscription traffic (Section 5).
  if (expiry) {
    const auto id = sub.id();
    (void)ensure_transport().schedule_timer_at(*expiry, [this, at, id]() {
      const auto reannounce = brokers_.at(at)->handle_expiry(id);
      for (const auto& [next, promoted] : reannounce) {
        schedule_reannounce(at, next, promoted);
      }
    });
  }
  for (const BrokerId next : forward_to) {
    ++metrics_.subscription_messages;
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kSubscribe;
    msg.from = at;
    msg.sub = sub;
    msg.expiry = expiry;
    ensure_transport().send_frame(at, next, msg);
  }
}

void BrokerNetwork::deliver_unsubscription(BrokerId at, SubscriptionId id,
                                           Origin origin) {
  const Broker::UnsubscriptionOutcome outcome =
      brokers_.at(at)->handle_unsubscription(id, origin);
  for (const BrokerId next : outcome.forward_to) {
    ++metrics_.unsubscription_messages;
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kUnsubscribe;
    msg.from = at;
    msg.id = id;
    ensure_transport().send_frame(at, next, msg);
  }
  // Promoted subscriptions flow as fresh subscription messages: the
  // neighbour never saw them while they were covered. The receiving broker
  // treats it like any subscription arrival (duplicate-suppressed if it
  // somehow already routes the id).
  for (const auto& [next, sub] : outcome.reannounce) {
    schedule_reannounce(at, next, sub);
  }
}

void BrokerNetwork::schedule_reannounce(BrokerId at, BrokerId next,
                                        const Subscription& promoted) {
  // A promoted subscription must travel with its original TTL expiry, or
  // the receiving broker would hold it forever. If the subscription is no
  // longer live (its own removal fires at this same instant), announcing
  // it would plant a route nothing ever cleans up — skip; every broker
  // that already routes it runs its own expiry/unsubscription anyway.
  const auto live = local_subs_.find(promoted.id());
  if (live == local_subs_.end()) return;
  const std::optional<sim::SimTime> expiry = live->second.expiry;
  ++metrics_.subscription_messages;
  wire::Announcement msg;
  msg.kind = wire::Announcement::Kind::kSubscribe;
  msg.from = at;
  msg.sub = promoted;
  msg.expiry = expiry;
  ensure_transport().send_frame(at, next, msg);
}

void BrokerNetwork::deliver_publication(BrokerId at, Publication pub,
                                        Origin origin, std::uint64_t token,
                                        std::vector<SubscriptionId>* sink) {
  // Cycle suppression: each broker processes one publication token once.
  if (!brokers_.at(at)->mark_publication_seen(token)) return;
  // The returned route lives in publish_scratch_ and is consumed before
  // this frame returns; scheduled hops copy what they need into their
  // handlers, so the next hop reusing the scratch is safe.
  const Broker::PublicationRoute& route =
      brokers_.at(at)->handle_publication(pub, origin, publish_scratch_);
  if (sink) {
    sink->insert(sink->end(), route.local_matches.begin(),
                 route.local_matches.end());
  }
  for (const BrokerId next : route.destinations) {
    ++metrics_.publication_messages;
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kPublication;
    msg.from = at;
    msg.pub = pub;
    msg.token = token;
    ensure_transport().send_frame(at, next, msg);
  }
}

void BrokerNetwork::subscribe(BrokerId broker, const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("BrokerNetwork::subscribe: id must be non-zero");
  }
  if (local_subs_.count(sub.id()) > 0) {
    throw std::invalid_argument("BrokerNetwork::subscribe: duplicate id");
  }
  require_alive(broker, "subscribe");
  local_subs_.emplace(sub.id(), LocalSub{broker, sub, std::nullopt});
  deliver_subscription(broker, sub, Origin{true, kInvalidBroker});
  run_cascade();
  drain_escalations();
}

void BrokerNetwork::subscribe_with_ttl(BrokerId broker, const Subscription& sub,
                                       sim::SimTime ttl) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("BrokerNetwork::subscribe_with_ttl: bad id");
  }
  if (local_subs_.count(sub.id()) > 0) {
    throw std::invalid_argument("BrokerNetwork::subscribe_with_ttl: duplicate id");
  }
  if (!(ttl > 0)) {
    throw std::invalid_argument("BrokerNetwork::subscribe_with_ttl: ttl <= 0");
  }
  require_alive(broker, "subscribe_with_ttl");
  const sim::SimTime expiry = queue_.now() + ttl;
  local_subs_.emplace(sub.id(), LocalSub{broker, sub, expiry});
  deliver_subscription(broker, sub, Origin{true, kInvalidBroker}, expiry);
  // The subscriber side forgets the subscription at expiry too.
  (void)ensure_transport().schedule_timer_at(
      expiry, [this, id = sub.id()]() { local_subs_.erase(id); });
  run_cascade();
  drain_escalations();
}

void BrokerNetwork::run_cascade() {
  if (!config_.link.enabled) {
    const sim::SimTime horizon =
        queue_.now() +
        static_cast<sim::SimTime>(brokers_.size() + 1) * config_.link_latency;
    queue_.run_until(horizon);
    return;
  }
  // Lossy wire: a hop can stretch to a whole retransmit-backoff chain, so
  // the quiescence horizon scales with worst_hop_delay. Drain by peeking
  // rather than run_until so the clock stops at the LAST REAL event — a
  // run_until here would fast-forward past mid-slot TTL expiry instants,
  // breaking the workload time contract.
  const sim::SimTime deadline =
      queue_.now() + static_cast<sim::SimTime>(brokers_.size() + 1) *
                         config_.link.worst_hop_delay(config_.link_latency);
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.run_step();
  }
}

void BrokerNetwork::advance_time(sim::SimTime horizon) {
  queue_.run_until(horizon);
  drain_escalations();
}

void BrokerNetwork::unsubscribe(BrokerId broker, SubscriptionId id) {
  const auto it = local_subs_.find(id);
  if (it == local_subs_.end() || it->second.home != broker) {
    throw std::invalid_argument("BrokerNetwork::unsubscribe: unknown id");
  }
  local_subs_.erase(it);
  deliver_unsubscription(broker, id, Origin{true, kInvalidBroker});
  run_cascade();
  drain_escalations();
}

void BrokerNetwork::account_delivery(BrokerId source, const Publication& pub,
                                     std::vector<SubscriptionId>& ids) {
  const std::size_t raw = ids.size();
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  metrics_.notifications_duplicated += raw - ids.size();

  // Loss accounting against ground truth (component-aware once membership
  // is engaged — a partitioned subscriber is unreachable, not lost).
  const std::vector<SubscriptionId> expected = expected_recipients(source, pub);
  for (const SubscriptionId id : expected) {
    if (std::binary_search(ids.begin(), ids.end(), id)) {
      ++metrics_.notifications_delivered;
    } else {
      ++metrics_.notifications_lost;
    }
  }
}

void BrokerNetwork::apply_source_route(BrokerId source, const Publication& pub,
                                       const Broker::PublicationRoute& route,
                                       std::vector<SubscriptionId>* sink) {
  // Mirrors what deliver_publication does at the source hop, except the
  // route was precomputed by the pipeline instead of handle_publication.
  // The token is fresh, so marking it seen cannot fail.
  const std::uint64_t token = ++publication_token_;
  (void)brokers_.at(source)->mark_publication_seen(token);
  pub_sinks_.emplace(token, sink);
  if (sink) {
    sink->insert(sink->end(), route.local_matches.begin(),
                 route.local_matches.end());
  }
  for (const BrokerId next : route.destinations) {
    ++metrics_.publication_messages;
    wire::Announcement msg;
    msg.kind = wire::Announcement::Kind::kPublication;
    msg.from = source;
    msg.pub = pub;
    msg.token = token;
    ensure_transport().send_frame(source, next, msg);
  }
}

std::vector<SubscriptionId> BrokerNetwork::publish_one(BrokerId broker,
                                                       const Publication& pub) {
  require_alive(broker, "publish");
  std::vector<SubscriptionId> delivered;
  const std::uint64_t token = ++publication_token_;
  pub_sinks_.emplace(token, &delivered);
  deliver_publication(broker, pub, Origin{true, kInvalidBroker}, token,
                      &delivered);
  run_cascade();
  // Escalations fire BEFORE accounting: a link the protocol gave up on is
  // already effectively down for this publication, so the expected set
  // must be computed against the post-fail_link components.
  drain_escalations();
  pub_sinks_.erase(token);
  account_delivery(broker, pub, delivered);
  return delivered;
}

std::vector<std::vector<SubscriptionId>> BrokerNetwork::publish_same_source(
    BrokerId broker, const std::vector<Publication>& pubs) {
  // Sinks must not move while scheduled handlers hold pointers to them:
  // sized up front, never resized below.
  require_alive(broker, "publish_batch");
  std::vector<std::vector<SubscriptionId>> delivered(pubs.size());
  if (config_.pipelined_publish && !config_.link.enabled) {
    // Staged path: precompute every source-hop route in one pipeline run
    // (matching never mutates routing state, so batching the matches ahead
    // of the hop effects is decision-neutral), then apply the effects in
    // publication order. The scheduled-event timeline is identical to the
    // injection path below: tokens ascend in publication order and every
    // first hop lands at now + link_latency.
    ensure_pipeline().run(*brokers_.at(broker), pubs,
                          Origin{true, kInvalidBroker}, pipeline_routes_);
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      apply_source_route(broker, pubs[i], pipeline_routes_[i], &delivered[i]);
    }
    run_cascade();
  } else {
    std::vector<sim::EventQueue::Handler> injections;
    injections.reserve(pubs.size());
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      const std::uint64_t token = ++publication_token_;
      auto* sink = &delivered[i];
      pub_sinks_.emplace(token, sink);
      injections.push_back([this, broker, pub = pubs[i], token, sink]() {
        deliver_publication(broker, pub, Origin{true, kInvalidBroker}, token,
                            sink);
      });
    }
    queue_.schedule_batch_in(0, std::move(injections));
    queue_.run_step();  // fire the whole injection front at one instant
    run_cascade();
  }
  drain_escalations();
  pub_sinks_.clear();

  for (std::size_t i = 0; i < pubs.size(); ++i) {
    account_delivery(broker, pubs[i], delivered[i]);
  }
  return delivered;
}

std::vector<std::vector<SubscriptionId>> BrokerNetwork::publish_multi_source(
    std::span<const std::pair<BrokerId, Publication>> pubs) {
  for (const auto& [source, pub] : pubs) require_alive(source, "publish_batch");
  std::vector<std::vector<SubscriptionId>> delivered(pubs.size());
  if (config_.pipelined_publish && !config_.link.enabled) {
    // Group pair indices per source broker (first-appearance order) so each
    // source needs one pipeline run, then apply the source-hop effects in
    // the original pair order — tokens and the event timeline come out
    // exactly as the per-pair injection path below produces them.
    std::vector<BrokerId> sources;
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      std::size_t g = 0;
      while (g < sources.size() && sources[g] != pubs[i].first) ++g;
      if (g == sources.size()) {
        sources.push_back(pubs[i].first);
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }
    std::vector<Broker::PublicationRoute> routes(pubs.size());
    std::vector<Publication> batch;
    for (std::size_t g = 0; g < sources.size(); ++g) {
      batch.clear();
      for (const std::size_t i : groups[g]) batch.push_back(pubs[i].second);
      ensure_pipeline().run(*brokers_.at(sources[g]), batch,
                            Origin{true, kInvalidBroker}, pipeline_routes_);
      for (std::size_t k = 0; k < groups[g].size(); ++k) {
        routes[groups[g][k]] = std::move(pipeline_routes_[k]);
      }
    }
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      apply_source_route(pubs[i].first, pubs[i].second, routes[i],
                         &delivered[i]);
    }
    run_cascade();
  } else {
    std::vector<sim::EventQueue::Handler> injections;
    injections.reserve(pubs.size());
    for (std::size_t i = 0; i < pubs.size(); ++i) {
      const std::uint64_t token = ++publication_token_;
      auto* sink = &delivered[i];
      pub_sinks_.emplace(token, sink);
      injections.push_back([this, source = pubs[i].first,
                            pub = pubs[i].second, token, sink]() {
        deliver_publication(source, pub, Origin{true, kInvalidBroker}, token,
                            sink);
      });
    }
    queue_.schedule_batch_in(0, std::move(injections));
    queue_.run_step();
    run_cascade();
  }
  drain_escalations();
  pub_sinks_.clear();

  for (std::size_t i = 0; i < pubs.size(); ++i) {
    account_delivery(pubs[i].first, pubs[i].second, delivered[i]);
  }
  return delivered;
}

// --- consolidated publish surface ---------------------------------------

PublishRequest PublishRequest::single(BrokerId broker, core::Publication pub) {
  PublishRequest request;
  request.shape_ = Shape::kSingle;
  request.broker_ = broker;
  request.pub_ = std::move(pub);
  return request;
}

PublishRequest PublishRequest::batch(BrokerId broker,
                                     std::vector<core::Publication> pubs) {
  PublishRequest request;
  request.shape_ = Shape::kSameSource;
  request.broker_ = broker;
  request.pubs_ = std::move(pubs);
  return request;
}

PublishRequest PublishRequest::multi_source(
    std::vector<SourcedPublication> pairs) {
  PublishRequest request;
  request.shape_ = Shape::kMultiSource;
  request.owned_pairs_ = std::move(pairs);
  return request;
}

PublishRequest PublishRequest::view(std::span<const SourcedPublication> pairs) {
  PublishRequest request;
  request.shape_ = Shape::kMultiSource;
  request.view_ = pairs;
  return request;
}

std::size_t PublishRequest::size() const noexcept {
  switch (shape_) {
    case Shape::kSingle:
      return 1;
    case Shape::kSameSource:
      return pubs_.size();
    case Shape::kMultiSource:
      return pairs().size();
  }
  return 0;
}

std::vector<std::vector<SubscriptionId>> BrokerNetwork::publish(
    const PublishRequest& request) {
  // Each shape dispatches to the legacy entry point's body verbatim, so a
  // request built from a legacy call is timeline-identical to it (same
  // token order, same injection events, same tie-break sequence numbers).
  switch (request.shape_) {
    case PublishRequest::Shape::kSingle: {
      std::vector<std::vector<SubscriptionId>> delivered(1);
      delivered[0] = publish_one(request.broker_, request.pub_);
      return delivered;
    }
    case PublishRequest::Shape::kSameSource:
      return publish_same_source(request.broker_, request.pubs_);
    case PublishRequest::Shape::kMultiSource:
      return publish_multi_source(request.pairs());
  }
  return {};
}

std::vector<SubscriptionId> BrokerNetwork::publish(BrokerId broker,
                                                   const Publication& pub) {
  return publish_one(broker, pub);
}

std::vector<std::vector<SubscriptionId>> BrokerNetwork::publish_batch(
    BrokerId broker, const std::vector<Publication>& pubs) {
  return publish_same_source(broker, pubs);
}

std::vector<std::vector<SubscriptionId>> BrokerNetwork::publish_batch(
    std::span<const std::pair<BrokerId, Publication>> pubs) {
  return publish_multi_source(pubs);
}

std::vector<std::uint8_t> BrokerNetwork::snapshot_all() const {
  wire::ByteWriter out;
  wire::write_frame_header(out, wire::kNetworkSnapshotMagic);
  wire::write_network_config(out, config_);

  // Topology: per-broker neighbour lists in their live order. Neighbour
  // ORDER is semantic — forwarding fans out in list order, which fixes
  // event-queue tie-breaks — so it is restored verbatim, not re-derived.
  out.varint(brokers_.size());
  for (const auto& broker : brokers_) {
    out.varint(broker->neighbors().size());
    for (const BrokerId neighbor : broker->neighbors()) out.varint(neighbor);
  }

  // v2 membership block: engaged flag; when engaged, the alive bitmap and
  // the failed/standby link set. Live links are implied by the neighbour
  // lists above, so only the down links need serializing.
  out.u8(link_state_ ? 1 : 0);
  if (link_state_) {
    for (std::size_t b = 0; b < brokers_.size(); ++b) {
      out.u8(link_state_->is_alive(static_cast<BrokerId>(b)) ? 1 : 0);
    }
    out.varint(link_state_->failed_links().size());
    for (const auto& [a, b] : link_state_->failed_links()) {
      out.varint(a);
      out.varint(b);
    }
  }

  out.f64(queue_.now());
  out.varint(publication_token_);

  // Client subscription registry (canonical id order), with TTL expiries:
  // the only state the armed timers carry that is not derivable from the
  // brokers themselves.
  std::vector<SubscriptionId> ids;
  ids.reserve(local_subs_.size());
  for (const auto& [sid, local] : local_subs_) ids.push_back(sid);
  std::sort(ids.begin(), ids.end());
  out.varint(ids.size());
  for (const SubscriptionId sid : ids) {
    const LocalSub& local = local_subs_.at(sid);
    out.varint(local.home);
    wire::write_subscription(out, local.sub);
    out.u8(local.expiry.has_value() ? 1 : 0);
    if (local.expiry) out.f64(*local.expiry);
  }

  for (const auto& broker : brokers_) {
    wire::write_broker_snapshot(out, broker->export_snapshot());
  }
  return out.take();
}

void BrokerNetwork::restore_all(std::span<const std::uint8_t> bytes) {
  wire::ByteReader in(bytes);
  wire::read_frame_header(in, wire::kNetworkSnapshotMagic, "network");
  // Pipeline knobs are runtime-only execution policy, not serialized state:
  // the restored network keeps this incarnation's settings (and its decisions
  // are identical either way).
  const bool pipelined = config_.pipelined_publish;
  const PublishPipelineOptions pipeline_options = config_.pipeline;
  config_ = wire::read_network_config(in);
  config_.pipelined_publish = pipelined;
  config_.pipeline = pipeline_options;

  // Wipe this incarnation. Pending events (TTL timers of the old state)
  // die with the old queue; metrics restart at zero.
  brokers_.clear();
  local_subs_.clear();
  queue_ = sim::EventQueue{};
  metrics_.reset();
  publication_token_ = 0;
  publish_scratch_ = Broker::PublishScratch{};
  link_state_.reset();
  // Transport state is runtime-only (snapshots are taken at quiescence,
  // when every stream is fully acked): discard and rebuild lazily, so both
  // ends of every link restart at sequence zero together under the
  // restored config. Fault-model streams restart too — delivery is
  // fault-invariant, so replayed ops still produce the original delivered
  // sets.
  transport_.reset();
  pending_escalations_.clear();
  escalated_links_.clear();
  pub_sinks_.clear();

  // Brokers are rebuilt through add_broker so per-broker seeds re-derive
  // from the serialized config exactly as original construction did.
  const std::size_t broker_count = in.count();
  std::vector<std::vector<BrokerId>> neighbor_lists(broker_count);
  for (std::size_t b = 0; b < broker_count; ++b) {
    const std::size_t degree = in.count();
    neighbor_lists[b].reserve(degree);
    for (std::size_t k = 0; k < degree; ++k) {
      const auto neighbor = static_cast<BrokerId>(in.varint());
      if (neighbor >= broker_count) {
        throw wire::DecodeError("wire: neighbour id out of range");
      }
      neighbor_lists[b].push_back(neighbor);
    }
  }
  const std::uint8_t has_membership = in.u8();
  if (has_membership > 1) throw wire::DecodeError("wire: bad membership flag");
  std::vector<char> alive_bits;
  std::vector<std::pair<BrokerId, BrokerId>> failed_links;
  if (has_membership) {
    alive_bits.resize(broker_count);
    for (std::size_t b = 0; b < broker_count; ++b) {
      const std::uint8_t bit = in.u8();
      if (bit > 1) throw wire::DecodeError("wire: bad alive bit");
      alive_bits[b] = static_cast<char>(bit);
    }
    const std::size_t failed_count = in.count();
    failed_links.reserve(failed_count);
    for (std::size_t i = 0; i < failed_count; ++i) {
      const auto a = static_cast<BrokerId>(in.varint());
      const auto b = static_cast<BrokerId>(in.varint());
      if (a >= broker_count || b >= broker_count) {
        throw wire::DecodeError("wire: failed-link id out of range");
      }
      failed_links.emplace_back(a, b);
    }
  }

  for (std::size_t b = 0; b < broker_count; ++b) (void)add_broker();
  for (std::size_t b = 0; b < broker_count; ++b) {
    for (const BrokerId neighbor : neighbor_lists[b]) {
      brokers_[b]->add_neighbor(neighbor);
    }
  }

  if (has_membership) {
    // Rebuild the link-state: all brokers up, live links from the neighbour
    // lists, down links from the block, then the alive bitmap. LinkState's
    // own invariant checks catch inconsistent (corrupted) combinations.
    LinkState state;
    for (std::size_t b = 0; b < broker_count; ++b) (void)state.add_broker();
    std::set<std::pair<BrokerId, BrokerId>> live;
    for (std::size_t b = 0; b < broker_count; ++b) {
      for (const BrokerId neighbor : neighbor_lists[b]) {
        live.insert(std::minmax(static_cast<BrokerId>(b), neighbor));
      }
    }
    try {
      for (const auto& [a, b] : live) state.add_link(a, b);
      for (const auto& [a, b] : failed_links) state.add_standby(a, b);
      for (std::size_t b = 0; b < broker_count; ++b) {
        if (!alive_bits[b]) state.set_dead(static_cast<BrokerId>(b));
      }
    } catch (const std::logic_error&) {
      throw wire::DecodeError("wire: inconsistent membership block");
    }
    link_state_.emplace(std::move(state));
  }

  const sim::SimTime now = in.f64();
  publication_token_ = in.varint();

  const std::size_t sub_count = in.count();
  std::vector<SubscriptionId> restored_ids;
  restored_ids.reserve(sub_count);
  for (std::size_t i = 0; i < sub_count; ++i) {
    LocalSub local;
    local.home = static_cast<BrokerId>(in.varint());
    if (local.home >= broker_count) {
      throw wire::DecodeError("wire: subscription home out of range");
    }
    local.sub = wire::read_subscription(in);
    const std::uint8_t has_expiry = in.u8();
    if (has_expiry > 1) throw wire::DecodeError("wire: bad expiry flag");
    if (has_expiry) local.expiry = in.f64();
    const SubscriptionId sid = local.sub.id();
    if (!local_subs_.emplace(sid, std::move(local)).second) {
      throw wire::DecodeError("wire: duplicate client subscription id");
    }
    restored_ids.push_back(sid);
  }

  for (std::size_t b = 0; b < broker_count; ++b) {
    brokers_[b]->import_snapshot(wire::read_broker_snapshot(in));
  }
  if (!in.at_end()) {
    throw wire::DecodeError("wire: trailing bytes after network snapshot");
  }

  // Clock: an empty-queue run_until is a pure time set.
  queue_.run_until(now);

  // Re-arm TTL expiry timers — derived state, not serialized. Per
  // subscription (canonical id order): the home broker's timer, the
  // registry-erase timer, then the other routing brokers ascending — the
  // same relative order subscribe_with_ttl + the flood produced for a
  // single subscription. Cross-subscription interleaving at an identical
  // expiry instant may differ from the original arm order; on the
  // spanning-tree overlays this is delivery-invariant (each broker's
  // expiry handling is local, and a re-announcement of a promoted
  // subscription has exactly one possible source link).
  for (const SubscriptionId sid : restored_ids) {
    const LocalSub& local = local_subs_.at(sid);
    if (!local.expiry) continue;
    const sim::SimTime expiry = *local.expiry;
    const auto arm = [this, expiry, sid](BrokerId at) {
      (void)ensure_transport().schedule_timer_at(expiry, [this, at, sid]() {
        const auto reannounce = brokers_.at(at)->handle_expiry(sid);
        for (const auto& [next, promoted] : reannounce) {
          schedule_reannounce(at, next, promoted);
        }
      });
    };
    arm(local.home);
    (void)ensure_transport().schedule_timer_at(
        expiry, [this, sid]() { local_subs_.erase(sid); });
    for (std::size_t b = 0; b < broker_count; ++b) {
      const auto id = static_cast<BrokerId>(b);
      if (id == local.home) continue;
      if (brokers_[b]->routes(sid)) arm(id);
    }
  }
}

std::vector<SubscriptionId> BrokerNetwork::expected_recipients(
    const Publication& pub) const {
  std::vector<SubscriptionId> ids;
  for (const auto& [sid, local] : local_subs_) {
    if (pub.matches(local.sub)) ids.push_back(sid);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<SubscriptionId> BrokerNetwork::expected_recipients(
    BrokerId from, const Publication& pub) const {
  if (!link_state_) return expected_recipients(pub);
  // A subscription is reachable iff its home broker is alive and in the
  // publisher's component. Registry entries homed at a crashed broker stay
  // registered (the client is unaware), but nothing can deliver to them.
  std::vector<SubscriptionId> ids;
  for (const auto& [sid, local] : local_subs_) {
    if (!link_state_->is_alive(local.home)) continue;
    if (!link_state_->same_component(from, local.home)) continue;
    if (pub.matches(local.sub)) ids.push_back(sid);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace psc::routing
