#include "routing/broker_network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/snapshot.hpp"

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

BrokerNetwork::BrokerNetwork(NetworkConfig config) : config_(config) {}

BrokerId BrokerNetwork::add_broker() {
  const auto id = static_cast<BrokerId>(brokers_.size());
  std::uint64_t seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1));
  brokers_.push_back(std::make_unique<Broker>(
      id, config_.store, util::splitmix64(seed), config_.match_shards));
  return id;
}

void BrokerNetwork::connect(BrokerId a, BrokerId b) {
  if (a == b) throw std::invalid_argument("BrokerNetwork::connect: self-link");
  brokers_.at(a)->add_neighbor(b);
  brokers_.at(b)->add_neighbor(a);
}

BrokerNetwork BrokerNetwork::figure1_topology(NetworkConfig config) {
  // Paper Figure 1: nine brokers; B3 and B4 form the backbone.
  // Links: B1-B3, B2-B3, B3-B4, B4-B5, B4-B6, B4-B7, B7-B8, B7-B9.
  BrokerNetwork net(config);
  for (int i = 0; i < 9; ++i) net.add_broker();
  auto id = [](int broker_number) { return static_cast<BrokerId>(broker_number - 1); };
  net.connect(id(1), id(3));
  net.connect(id(2), id(3));
  net.connect(id(3), id(4));
  net.connect(id(4), id(5));
  net.connect(id(4), id(6));
  net.connect(id(4), id(7));
  net.connect(id(7), id(8));
  net.connect(id(7), id(9));
  return net;
}

BrokerNetwork BrokerNetwork::chain_topology(std::size_t n, NetworkConfig config) {
  if (n == 0) throw std::invalid_argument("chain_topology: n must be > 0");
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.connect(static_cast<BrokerId>(i), static_cast<BrokerId>(i + 1));
  }
  return net;
}

BrokerNetwork BrokerNetwork::random_tree_topology(std::size_t n,
                                                  std::uint64_t seed,
                                                  NetworkConfig config) {
  if (n == 0) throw std::invalid_argument("random_tree_topology: n must be > 0");
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < n; ++i) net.add_broker();
  util::Rng rng(seed);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<BrokerId>(rng.next_below(i));
    net.connect(static_cast<BrokerId>(i), parent);
  }
  return net;
}

BrokerNetwork BrokerNetwork::grid_topology(std::size_t rows, std::size_t cols,
                                           NetworkConfig config) {
  if (rows == 0 || cols == 0 || rows * cols < 2) {
    throw std::invalid_argument("grid_topology: need rows, cols > 0 and > 1 broker");
  }
  BrokerNetwork net(config);
  for (std::size_t i = 0; i < rows * cols; ++i) net.add_broker();
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<BrokerId>(r * cols + c);
  };
  // Comb spanning tree of the grid: the first row is the spine, every
  // column hangs off it. Acyclic by construction, diameter rows + cols - 2.
  for (std::size_t c = 0; c + 1 < cols; ++c) net.connect(at(0, c), at(0, c + 1));
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r + 1 < rows; ++r) {
      net.connect(at(r, c), at(r + 1, c));
    }
  }
  return net;
}

BrokerNetwork BrokerNetwork::random_regular_topology(std::size_t n,
                                                     std::size_t degree,
                                                     std::uint64_t seed,
                                                     NetworkConfig config) {
  if (degree < 2 || degree >= n || (n * degree) % 2 != 0) {
    throw std::invalid_argument(
        "random_regular_topology: need 2 <= degree < n and n * degree even");
  }
  util::Rng rng(seed);
  // Pairing model: shuffle n * degree stubs, pair them consecutively, and
  // reject draws with self-loops, parallel edges, or a disconnected graph.
  // Acceptance probability is bounded away from zero for fixed degree, so
  // a few hundred attempts is overkill; the throw is a config-error guard.
  std::vector<std::vector<std::size_t>> adjacency;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::size_t> stubs;
    stubs.reserve(n * degree);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t k = 0; k < degree; ++k) stubs.push_back(v);
    }
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.next_below(i + 1)]);
    }
    adjacency.assign(n, {});
    bool ok = true;
    for (std::size_t i = 0; ok && i < stubs.size(); i += 2) {
      const std::size_t a = stubs[i], b = stubs[i + 1];
      if (a == b) ok = false;
      for (const std::size_t peer : adjacency[a]) {
        if (peer == b) ok = false;
      }
      if (ok) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
      }
    }
    if (!ok) continue;
    // BFS from 0: connectivity check and spanning tree in one pass. The
    // overlay routes over the tree (tree edges only), keeping it acyclic;
    // node degrees are bounded by the graph degree.
    std::vector<BrokerId> parent(n, kInvalidBroker);
    std::vector<char> seen(n, 0);
    std::vector<std::size_t> frontier{0};
    seen[0] = 1;
    std::size_t reached = 1;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const std::size_t v = frontier[head];
      // Deterministic visit order within a node's adjacency list.
      for (const std::size_t peer : adjacency[v]) {
        if (seen[peer]) continue;
        seen[peer] = 1;
        parent[peer] = static_cast<BrokerId>(v);
        frontier.push_back(peer);
        ++reached;
      }
    }
    if (reached != n) continue;
    BrokerNetwork net(config);
    for (std::size_t i = 0; i < n; ++i) net.add_broker();
    for (std::size_t v = 1; v < n; ++v) {
      net.connect(static_cast<BrokerId>(v), parent[v]);
    }
    return net;
  }
  throw std::runtime_error(
      "random_regular_topology: no connected simple draw in 1000 attempts");
}

void BrokerNetwork::deliver_subscription(BrokerId at, Subscription sub,
                                         Origin origin,
                                         std::optional<sim::SimTime> expiry) {
  std::uint64_t suppressed = 0;
  const std::vector<BrokerId> forward_to =
      brokers_.at(at)->handle_subscription(sub, origin, &suppressed);
  metrics_.subscriptions_suppressed += suppressed;
  // Each broker arms its own timer — expiry removes the subscription
  // everywhere with zero unsubscription traffic (Section 5).
  if (expiry) {
    const auto id = sub.id();
    queue_.schedule_at(*expiry, [this, at, id]() {
      const auto reannounce = brokers_.at(at)->handle_expiry(id);
      for (const auto& [next, promoted] : reannounce) {
        schedule_reannounce(at, next, promoted);
      }
    });
  }
  for (const BrokerId next : forward_to) {
    ++metrics_.subscription_messages;
    queue_.schedule_in(config_.link_latency, [this, next, at, sub, expiry]() {
      deliver_subscription(next, sub, Origin{false, at}, expiry);
    });
  }
}

void BrokerNetwork::deliver_unsubscription(BrokerId at, SubscriptionId id,
                                           Origin origin) {
  const Broker::UnsubscriptionOutcome outcome =
      brokers_.at(at)->handle_unsubscription(id, origin);
  for (const BrokerId next : outcome.forward_to) {
    ++metrics_.unsubscription_messages;
    queue_.schedule_in(config_.link_latency, [this, next, at, id]() {
      deliver_unsubscription(next, id, Origin{false, at});
    });
  }
  // Promoted subscriptions flow as fresh subscription messages: the
  // neighbour never saw them while they were covered. The receiving broker
  // treats it like any subscription arrival (duplicate-suppressed if it
  // somehow already routes the id).
  for (const auto& [next, sub] : outcome.reannounce) {
    schedule_reannounce(at, next, sub);
  }
}

void BrokerNetwork::schedule_reannounce(BrokerId at, BrokerId next,
                                        const Subscription& promoted) {
  // A promoted subscription must travel with its original TTL expiry, or
  // the receiving broker would hold it forever. If the subscription is no
  // longer live (its own removal fires at this same instant), announcing
  // it would plant a route nothing ever cleans up — skip; every broker
  // that already routes it runs its own expiry/unsubscription anyway.
  const auto live = local_subs_.find(promoted.id());
  if (live == local_subs_.end()) return;
  const std::optional<sim::SimTime> expiry = live->second.expiry;
  ++metrics_.subscription_messages;
  queue_.schedule_in(config_.link_latency, [this, next, at, promoted, expiry]() {
    deliver_subscription(next, promoted, Origin{false, at}, expiry);
  });
}

void BrokerNetwork::deliver_publication(BrokerId at, Publication pub,
                                        Origin origin, std::uint64_t token,
                                        std::vector<SubscriptionId>* sink) {
  // Cycle suppression: each broker processes one publication token once.
  if (!brokers_.at(at)->mark_publication_seen(token)) return;
  // The returned route lives in publish_scratch_ and is consumed before
  // this frame returns; scheduled hops copy what they need into their
  // handlers, so the next hop reusing the scratch is safe.
  const Broker::PublicationRoute& route =
      brokers_.at(at)->handle_publication(pub, origin, publish_scratch_);
  if (sink) {
    sink->insert(sink->end(), route.local_matches.begin(),
                 route.local_matches.end());
  }
  for (const BrokerId next : route.destinations) {
    ++metrics_.publication_messages;
    queue_.schedule_in(config_.link_latency, [this, next, at, pub, token, sink]() {
      deliver_publication(next, pub, Origin{false, at}, token, sink);
    });
  }
}

void BrokerNetwork::subscribe(BrokerId broker, const Subscription& sub) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("BrokerNetwork::subscribe: id must be non-zero");
  }
  if (local_subs_.count(sub.id()) > 0) {
    throw std::invalid_argument("BrokerNetwork::subscribe: duplicate id");
  }
  local_subs_.emplace(sub.id(), LocalSub{broker, sub, std::nullopt});
  deliver_subscription(broker, sub, Origin{true, kInvalidBroker});
  run_cascade();
}

void BrokerNetwork::subscribe_with_ttl(BrokerId broker, const Subscription& sub,
                                       sim::SimTime ttl) {
  if (sub.id() == core::kInvalidSubscriptionId) {
    throw std::invalid_argument("BrokerNetwork::subscribe_with_ttl: bad id");
  }
  if (local_subs_.count(sub.id()) > 0) {
    throw std::invalid_argument("BrokerNetwork::subscribe_with_ttl: duplicate id");
  }
  if (!(ttl > 0)) {
    throw std::invalid_argument("BrokerNetwork::subscribe_with_ttl: ttl <= 0");
  }
  const sim::SimTime expiry = queue_.now() + ttl;
  local_subs_.emplace(sub.id(), LocalSub{broker, sub, expiry});
  deliver_subscription(broker, sub, Origin{true, kInvalidBroker}, expiry);
  // The subscriber side forgets the subscription at expiry too.
  queue_.schedule_at(expiry, [this, id = sub.id()]() { local_subs_.erase(id); });
  run_cascade();
}

void BrokerNetwork::run_cascade() {
  const sim::SimTime horizon =
      queue_.now() +
      static_cast<sim::SimTime>(brokers_.size() + 1) * config_.link_latency;
  queue_.run_until(horizon);
}

void BrokerNetwork::advance_time(sim::SimTime horizon) {
  queue_.run_until(horizon);
}

void BrokerNetwork::unsubscribe(BrokerId broker, SubscriptionId id) {
  const auto it = local_subs_.find(id);
  if (it == local_subs_.end() || it->second.home != broker) {
    throw std::invalid_argument("BrokerNetwork::unsubscribe: unknown id");
  }
  local_subs_.erase(it);
  deliver_unsubscription(broker, id, Origin{true, kInvalidBroker});
  run_cascade();
}

std::vector<SubscriptionId> BrokerNetwork::publish(BrokerId broker,
                                                   const Publication& pub) {
  std::vector<SubscriptionId> delivered;
  deliver_publication(broker, pub, Origin{true, kInvalidBroker}, ++publication_token_,
                      &delivered);
  run_cascade();
  std::sort(delivered.begin(), delivered.end());
  delivered.erase(std::unique(delivered.begin(), delivered.end()),
                  delivered.end());

  // Loss accounting against ground truth.
  const std::vector<SubscriptionId> expected = expected_recipients(pub);
  for (const SubscriptionId id : expected) {
    if (std::binary_search(delivered.begin(), delivered.end(), id)) {
      ++metrics_.notifications_delivered;
    } else {
      ++metrics_.notifications_lost;
    }
  }
  return delivered;
}

std::vector<std::vector<SubscriptionId>> BrokerNetwork::publish_batch(
    BrokerId broker, const std::vector<Publication>& pubs) {
  // Sinks must not move while scheduled handlers hold pointers to them:
  // sized up front, never resized below.
  std::vector<std::vector<SubscriptionId>> delivered(pubs.size());
  std::vector<sim::EventQueue::Handler> injections;
  injections.reserve(pubs.size());
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    const std::uint64_t token = ++publication_token_;
    auto* sink = &delivered[i];
    injections.push_back([this, broker, pub = pubs[i], token, sink]() {
      deliver_publication(broker, pub, Origin{true, kInvalidBroker}, token,
                          sink);
    });
  }
  queue_.schedule_batch_in(0, std::move(injections));
  queue_.run_step();  // fire the whole injection front at one instant
  run_cascade();

  for (std::size_t i = 0; i < pubs.size(); ++i) {
    auto& ids = delivered[i];
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    const std::vector<SubscriptionId> expected = expected_recipients(pubs[i]);
    for (const SubscriptionId id : expected) {
      if (std::binary_search(ids.begin(), ids.end(), id)) {
        ++metrics_.notifications_delivered;
      } else {
        ++metrics_.notifications_lost;
      }
    }
  }
  return delivered;
}

std::vector<std::uint8_t> BrokerNetwork::snapshot_all() const {
  wire::ByteWriter out;
  wire::write_frame_header(out, wire::kNetworkSnapshotMagic);
  wire::write_network_config(out, config_);

  // Topology: per-broker neighbour lists in their live order. Neighbour
  // ORDER is semantic — forwarding fans out in list order, which fixes
  // event-queue tie-breaks — so it is restored verbatim, not re-derived.
  out.varint(brokers_.size());
  for (const auto& broker : brokers_) {
    out.varint(broker->neighbors().size());
    for (const BrokerId neighbor : broker->neighbors()) out.varint(neighbor);
  }

  out.f64(queue_.now());
  out.varint(publication_token_);

  // Client subscription registry (canonical id order), with TTL expiries:
  // the only state the armed timers carry that is not derivable from the
  // brokers themselves.
  std::vector<SubscriptionId> ids;
  ids.reserve(local_subs_.size());
  for (const auto& [sid, local] : local_subs_) ids.push_back(sid);
  std::sort(ids.begin(), ids.end());
  out.varint(ids.size());
  for (const SubscriptionId sid : ids) {
    const LocalSub& local = local_subs_.at(sid);
    out.varint(local.home);
    wire::write_subscription(out, local.sub);
    out.u8(local.expiry.has_value() ? 1 : 0);
    if (local.expiry) out.f64(*local.expiry);
  }

  for (const auto& broker : brokers_) {
    wire::write_broker_snapshot(out, broker->export_snapshot());
  }
  return out.take();
}

void BrokerNetwork::restore_all(std::span<const std::uint8_t> bytes) {
  wire::ByteReader in(bytes);
  wire::read_frame_header(in, wire::kNetworkSnapshotMagic, "network");
  config_ = wire::read_network_config(in);

  // Wipe this incarnation. Pending events (TTL timers of the old state)
  // die with the old queue; metrics restart at zero.
  brokers_.clear();
  local_subs_.clear();
  queue_ = sim::EventQueue{};
  metrics_.reset();
  publication_token_ = 0;
  publish_scratch_ = Broker::PublishScratch{};

  // Brokers are rebuilt through add_broker so per-broker seeds re-derive
  // from the serialized config exactly as original construction did.
  const std::size_t broker_count = in.count();
  std::vector<std::vector<BrokerId>> neighbor_lists(broker_count);
  for (std::size_t b = 0; b < broker_count; ++b) {
    const std::size_t degree = in.count();
    neighbor_lists[b].reserve(degree);
    for (std::size_t k = 0; k < degree; ++k) {
      const auto neighbor = static_cast<BrokerId>(in.varint());
      if (neighbor >= broker_count) {
        throw wire::DecodeError("wire: neighbour id out of range");
      }
      neighbor_lists[b].push_back(neighbor);
    }
  }
  for (std::size_t b = 0; b < broker_count; ++b) (void)add_broker();
  for (std::size_t b = 0; b < broker_count; ++b) {
    for (const BrokerId neighbor : neighbor_lists[b]) {
      brokers_[b]->add_neighbor(neighbor);
    }
  }

  const sim::SimTime now = in.f64();
  publication_token_ = in.varint();

  const std::size_t sub_count = in.count();
  std::vector<SubscriptionId> restored_ids;
  restored_ids.reserve(sub_count);
  for (std::size_t i = 0; i < sub_count; ++i) {
    LocalSub local;
    local.home = static_cast<BrokerId>(in.varint());
    if (local.home >= broker_count) {
      throw wire::DecodeError("wire: subscription home out of range");
    }
    local.sub = wire::read_subscription(in);
    const std::uint8_t has_expiry = in.u8();
    if (has_expiry > 1) throw wire::DecodeError("wire: bad expiry flag");
    if (has_expiry) local.expiry = in.f64();
    const SubscriptionId sid = local.sub.id();
    if (!local_subs_.emplace(sid, std::move(local)).second) {
      throw wire::DecodeError("wire: duplicate client subscription id");
    }
    restored_ids.push_back(sid);
  }

  for (std::size_t b = 0; b < broker_count; ++b) {
    brokers_[b]->import_snapshot(wire::read_broker_snapshot(in));
  }
  if (!in.at_end()) {
    throw wire::DecodeError("wire: trailing bytes after network snapshot");
  }

  // Clock: an empty-queue run_until is a pure time set.
  queue_.run_until(now);

  // Re-arm TTL expiry timers — derived state, not serialized. Per
  // subscription (canonical id order): the home broker's timer, the
  // registry-erase timer, then the other routing brokers ascending — the
  // same relative order subscribe_with_ttl + the flood produced for a
  // single subscription. Cross-subscription interleaving at an identical
  // expiry instant may differ from the original arm order; on the
  // spanning-tree overlays this is delivery-invariant (each broker's
  // expiry handling is local, and a re-announcement of a promoted
  // subscription has exactly one possible source link).
  for (const SubscriptionId sid : restored_ids) {
    const LocalSub& local = local_subs_.at(sid);
    if (!local.expiry) continue;
    const sim::SimTime expiry = *local.expiry;
    const auto arm = [this, expiry, sid](BrokerId at) {
      queue_.schedule_at(expiry, [this, at, sid]() {
        const auto reannounce = brokers_.at(at)->handle_expiry(sid);
        for (const auto& [next, promoted] : reannounce) {
          schedule_reannounce(at, next, promoted);
        }
      });
    };
    arm(local.home);
    queue_.schedule_at(expiry, [this, sid]() { local_subs_.erase(sid); });
    for (std::size_t b = 0; b < broker_count; ++b) {
      const auto id = static_cast<BrokerId>(b);
      if (id == local.home) continue;
      if (brokers_[b]->routes(sid)) arm(id);
    }
  }
}

std::vector<SubscriptionId> BrokerNetwork::expected_recipients(
    const Publication& pub) const {
  std::vector<SubscriptionId> ids;
  for (const auto& [sid, local] : local_subs_) {
    if (pub.matches(local.sub)) ids.push_back(sid);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace psc::routing
