// FlatOracle — the differential ground truth for BrokerNetwork.
//
// Replays the same client-visible op sequence (subscribe /
// subscribe_with_ttl / unsubscribe / publish / advance_time) against one
// flat subscription table with no overlay, no links, and no coverage
// pruning. Matching runs through a coverage-free SubscriptionStore
// configured WITHOUT the interval index (use_index = false): direct box
// evaluation over a flat active set, so its delivered set is correct by
// construction and stays independent of the index implementation the
// network under test relies on; any divergence from the network is a
// routing bug (or, under the probabilistic kGroup policy, the paper's
// bounded false-suppression error).
//
// Time contract: the oracle mirrors the network's TTL semantics — a
// subscription with expiry E is live while now < E and dies once time
// advances to E or beyond. The one intentional simplification is that
// publish() does not advance the clock, whereas BrokerNetwork::publish
// runs its cascade (now moves by up to (brokers + 1) * link_latency).
// Differential replays therefore require expiry instants to stay out of
// cascade windows; workload::generate_churn_trace guarantees this by
// quantizing op times to slot boundaries and placing every expiry at a
// mid-slot offset wider than the worst-case cascade.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "routing/broker.hpp"
#include "routing/membership.hpp"
#include "sim/event_queue.hpp"
#include "store/subscription_store.hpp"

namespace psc::routing {

class FlatOracle {
 public:
  FlatOracle();

  /// Mirrors BrokerNetwork::subscribe preconditions: non-zero id not
  /// already live; violations throw std::invalid_argument.
  void subscribe(BrokerId broker, const core::Subscription& sub);

  /// Mirrors BrokerNetwork::subscribe_with_ttl (ttl > 0); the subscription
  /// dies when time advances to now + ttl.
  void subscribe_with_ttl(BrokerId broker, const core::Subscription& sub,
                          sim::SimTime ttl);

  /// Mirrors BrokerNetwork::unsubscribe: id must be live and homed at
  /// `broker`, else std::invalid_argument.
  void unsubscribe(BrokerId broker, core::SubscriptionId id);

  /// Advances the clock (monotone; earlier horizons are no-ops) and drops
  /// every subscription whose expiry has been reached.
  void advance_time(sim::SimTime horizon);

  /// Ground-truth delivered set: ids of live subscriptions containing the
  /// publication point, sorted ascending. Does not advance the clock.
  [[nodiscard]] std::vector<core::SubscriptionId> publish(
      const core::Publication& pub);

  /// Out-parameter form: `out` is cleared and refilled (capacity kept), so
  /// a driver replaying millions of publishes reuses one buffer.
  void publish(const core::Publication& pub,
               std::vector<core::SubscriptionId>& out);

  // --- membership mirroring ----------------------------------------------
  // The oracle stays routing-free under churn: it owns its own LinkState,
  // drives it through the same mutation sequence as the network (so the
  // repair plans agree by construction), and filters ground-truth delivered
  // sets by reachability — a subscription counts iff its home broker is
  // alive and in the publisher's component. Crash keeps registry entries
  // (clients are unaware their broker died); graceful leave removes them.

  /// Engages membership mirroring against the network's universe.
  void enable_membership(const MembershipUniverse& universe);
  [[nodiscard]] bool membership_active() const noexcept {
    return link_state_.has_value();
  }
  [[nodiscard]] const LinkState& link_state() const;

  BrokerId add_peer(BrokerId attach_to);
  void remove_peer(BrokerId broker);
  void crash_peer(BrokerId broker);
  void replace_peer(BrokerId broker);
  void fail_link(BrokerId a, BrokerId b);
  void heal_link(BrokerId a, BrokerId b);

  /// Component-aware ground truth: delivered set filtered by reachability
  /// from the publisher. Identical to the from-less form when membership is
  /// not engaged.
  void publish(BrokerId from, const core::Publication& pub,
               std::vector<core::SubscriptionId>& out);

  [[nodiscard]] sim::SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t live_count() const noexcept { return meta_.size(); }

 private:
  struct Meta {
    BrokerId home;
    std::optional<sim::SimTime> expiry;
  };
  /// Home/expiry bookkeeping; the subscriptions themselves live in store_.
  std::unordered_map<core::SubscriptionId, Meta> meta_;
  /// Flat-scan match table (kNone coverage, no index, every sub active).
  store::SubscriptionStore store_;
  sim::SimTime now_ = 0.0;
  std::optional<LinkState> link_state_;
  /// Reused unfiltered-match buffer for the component-aware publish.
  std::vector<core::SubscriptionId> scratch_;

  void expire_due();
  void require_alive(BrokerId broker, const char* what) const;
};

}  // namespace psc::routing
