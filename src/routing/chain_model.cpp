#include "routing/chain_model.hpp"

#include <cmath>
#include <stdexcept>

namespace psc::routing {

namespace {

void validate(const ChainParams& params) {
  if (params.broker_count == 0) {
    throw std::invalid_argument("ChainParams: broker_count must be > 0");
  }
  if (!(params.rho >= 0.0 && params.rho <= 1.0)) {
    throw std::invalid_argument("ChainParams: rho must be in [0, 1]");
  }
  if (!(params.rho_w >= 0.0 && params.rho_w <= 1.0)) {
    throw std::invalid_argument("ChainParams: rho_w must be in [0, 1]");
  }
}

/// 1 - (1 - rho_w)^d: probability one full RSPC round finds a witness.
double detect_probability(const ChainParams& params) {
  return 1.0 - std::pow(1.0 - params.rho_w, static_cast<double>(params.d));
}

}  // namespace

double chain_delivery_probability(const ChainParams& params) {
  validate(params);
  const double detect = detect_probability(params);
  const double ratio = (1.0 - params.rho) * detect;
  double sum = 0.0;
  double term = 1.0;  // ratio^(i-1), i = 1
  for (std::size_t i = 0; i < params.broker_count; ++i) {
    sum += params.rho * term;
    term *= ratio;
  }
  return sum;
}

double simulate_chain_delivery(const ChainParams& params, std::uint64_t runs,
                               util::Rng& rng) {
  validate(params);
  if (runs == 0) throw std::invalid_argument("simulate_chain_delivery: runs == 0");
  const double detect = detect_probability(params);
  std::uint64_t found = 0;
  for (std::uint64_t run = 0; run < runs; ++run) {
    // Walk brokers B1..Bn. At each broker the publication is present with
    // probability rho — if so, it is found there and we stop. Otherwise
    // the subscription continues down the chain only if this hop's checker
    // detects non-coverage (probability `detect`).
    for (std::size_t hop = 0; hop < params.broker_count; ++hop) {
      if (rng.bernoulli(params.rho)) {
        ++found;
        break;
      }
      if (!rng.bernoulli(detect)) break;  // withheld: chain stops here
    }
  }
  return static_cast<double>(found) / static_cast<double>(runs);
}

}  // namespace psc::routing
