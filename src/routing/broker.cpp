#include "routing/broker.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "wire/snapshot.hpp"

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

namespace {

/// Configuration of the local match index: coverage-free (every routed
/// subscription must stay individually matchable), index on/off and
/// bucketing inherited from the broker's store config.
exec::ShardConfig match_index_config(const store::StoreConfig& store_config,
                                     std::size_t match_shards) {
  exec::ShardConfig config;
  config.shard_count = match_shards == 0 ? 1 : match_shards;
  config.store.policy = store::CoveragePolicy::kNone;
  config.store.demote_covered_actives = false;
  config.store.use_index = store_config.use_index;
  config.store.index = store_config.index;
  return config;
}

}  // namespace

Broker::Broker(BrokerId id, store::StoreConfig store_config, std::uint64_t seed,
               std::size_t match_shards)
    : id_(id),
      store_config_(store_config),
      seed_(seed),
      routed_(match_index_config(store_config, match_shards),
              util::splitmix64(seed)) {}

void Broker::add_neighbor(BrokerId neighbor) {
  if (std::find(neighbors_.begin(), neighbors_.end(), neighbor) !=
      neighbors_.end()) {
    return;
  }
  neighbors_.push_back(neighbor);
}

void Broker::remove_neighbor(BrokerId neighbor) {
  neighbors_.erase(std::remove(neighbors_.begin(), neighbors_.end(), neighbor),
                   neighbors_.end());
  forwarded_.erase(neighbor);
}

Broker::AnnounceOutcome Broker::announce_all_to(BrokerId neighbor) {
  if (std::find(neighbors_.begin(), neighbors_.end(), neighbor) ==
      neighbors_.end()) {
    throw std::invalid_argument("Broker::announce_all_to: not a neighbour");
  }
  if (forwarded_.find(neighbor) != forwarded_.end()) {
    throw std::logic_error("Broker::announce_all_to: link store is not fresh");
  }
  std::vector<const RouteEntry*> entries;
  entries.reserve(routing_table_.size());
  routing_table_.for_each([&](SubscriptionId, const RouteEntry& entry) {
    if (!entry.origin.local && entry.origin.neighbor == neighbor) return;
    entries.push_back(&entry);
  });
  std::sort(entries.begin(), entries.end(),
            [](const RouteEntry* a, const RouteEntry* b) {
              return a->sub.id() < b->sub.id();
            });
  AnnounceOutcome outcome;
  store::SubscriptionStore& link_store = forwarded_mutable(neighbor);
  for (const RouteEntry* entry : entries) {
    if (link_store.insert(entry->sub).covered) {
      ++outcome.suppressed;
      continue;
    }
    outcome.announce.push_back(entry->sub);
  }
  return outcome;
}

store::SubscriptionStore& Broker::forwarded_mutable(BrokerId neighbor) {
  auto it = forwarded_.find(neighbor);
  if (it == forwarded_.end()) {
    // The link store's ACTIVE set must stay exactly the set of
    // subscriptions ANNOUNCED to the neighbour: an id is forwarded when it
    // inserts active, reannounced when promotion makes it active, and an
    // unsubscription is forwarded iff the id is active here. Demoting an
    // active (because a later subscription covers it) would break that
    // invariant — the neighbour learned the id when it was announced, so
    // skipping its unsubscription leaks a ghost route on the neighbour's
    // side forever (caught by the churn differential suite). Demotion is
    // therefore disabled on link stores; it costs nothing in suppression
    // power because anything covered by a demoted active is also covered
    // by that active's coverer.
    store::StoreConfig link_config = store_config_;
    link_config.demote_covered_actives = false;
    // Derive a per-link seed so link stores have independent RNG streams
    // while the whole network stays reproducible.
    std::uint64_t mix = seed_ ^ (static_cast<std::uint64_t>(id_) << 32) ^ neighbor;
    it = forwarded_
             .emplace(neighbor, std::make_unique<store::SubscriptionStore>(
                                    link_config, util::splitmix64(mix)))
             .first;
  }
  return *it->second;
}

const store::SubscriptionStore* Broker::forwarded_store(BrokerId neighbor) const {
  const auto it = forwarded_.find(neighbor);
  return it == forwarded_.end() ? nullptr : it->second.get();
}

void Broker::enable_publish_lanes(std::size_t local_shards) {
  lane_local_shards_ =
      local_shards == 0 ? routed_.shard_count() : local_shards;
  lanes_ = std::make_unique<PublishLanes>();
  std::uint64_t mix = seed_ ^ 0x6c616e65736c6fULL;  // lane-seed domain tag
  lanes_->local = std::make_unique<exec::ShardedStore>(
      match_index_config(store_config_, lane_local_shards_),
      util::splitmix64(mix));
  // Rebuild from whatever the table already holds (normally empty: the
  // network enables lanes right after construction). Table iteration
  // order is a hash artifact, but lane stores are coverage-free — their
  // match SET is insert-order-invariant — so the rebuild is
  // decision-neutral.
  routing_table_.for_each([&](SubscriptionId, const RouteEntry& entry) {
    lane_insert(entry.sub, entry.origin);
  });
}

store::SubscriptionStore& Broker::neighbor_lane(BrokerId neighbor) {
  auto it = lanes_->neighbor.find(neighbor);
  if (it == lanes_->neighbor.end()) {
    std::uint64_t mix =
        seed_ ^ 0x6e6c616e65ULL ^ (static_cast<std::uint64_t>(neighbor) << 20);
    it = lanes_->neighbor
             .emplace(neighbor,
                      std::make_unique<store::SubscriptionStore>(
                          match_index_config(store_config_, 1).store,
                          util::splitmix64(mix)))
             .first;
  }
  return *it->second;
}

void Broker::lane_insert(const core::Subscription& sub, const Origin& origin) {
  if (!lanes_) return;
  if (origin.local) {
    (void)lanes_->local->insert(sub);
  } else {
    (void)neighbor_lane(origin.neighbor).insert(sub);
  }
}

void Broker::lane_erase(SubscriptionId id, const Origin& origin) {
  if (!lanes_) return;
  if (origin.local) {
    (void)lanes_->local->erase(id);
  } else if (const auto it = lanes_->neighbor.find(origin.neighbor);
             it != lanes_->neighbor.end()) {
    (void)it->second->erase(id);
  }
}

std::vector<BrokerId> Broker::handle_subscription(const Subscription& sub,
                                                  const Origin& origin,
                                                  std::uint64_t* suppressed_out) {
  // Duplicate flood suppression: if we already route this subscription,
  // do not re-forward (cycles in the overlay graph are cut here).
  // try_emplace forwards the pieces, so a suppressed duplicate costs a
  // probe — no RouteEntry (and no subscription copy) is built for it.
  if (!routing_table_.try_emplace(sub.id(), sub, origin).second) {
    return {};
  }
  (void)routed_.insert(sub);
  lane_insert(sub, origin);

  std::vector<BrokerId> forward_to;
  for (const BrokerId neighbor : neighbors_) {
    if (!origin.local && origin.neighbor == neighbor) continue;
    store::SubscriptionStore& link_store = forwarded_mutable(neighbor);
    const store::InsertResult inserted = link_store.insert(sub);
    if (inserted.covered) {
      if (suppressed_out) ++*suppressed_out;
      continue;  // neighbour already holds a covering set; stay silent
    }
    forward_to.push_back(neighbor);
  }
  return forward_to;
}

std::vector<std::vector<BrokerId>> Broker::insert_batch(
    std::span<const Subscription> subs, const Origin& origin,
    exec::ThreadPool* pool, std::uint64_t* suppressed_out) {
  std::vector<std::vector<BrokerId>> forward_lists(subs.size());

  // Phase 1 (sequential): routing-table admission. Order matters — a
  // duplicate id later in the batch must be dropped exactly as a second
  // handle_subscription call would drop it. Downstream phases reference
  // the routing-table copies instead of copying each subscription again;
  // the reserve keeps the flat map rehash-free for the whole batch, so
  // those pointers stay stable.
  routing_table_.reserve(routing_table_.size() + subs.size());
  std::vector<std::size_t> accepted;
  accepted.reserve(subs.size());
  std::vector<const Subscription*> accepted_subs;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto [entry, inserted] =
        routing_table_.try_emplace(subs[i].id(), subs[i], origin);
    if (!inserted) continue;
    accepted.push_back(i);
    accepted_subs.push_back(&entry->sub);
  }

  // Phase 2 (parallel over the match-index shards): mirror the accepted
  // subscriptions into the local match index.
  (void)routed_.insert_batch(accepted_subs, pool);
  for (const Subscription* sub : accepted_subs) lane_insert(*sub, origin);

  // Phase 3 (parallel over links): per-link coverage. Each lane owns one
  // forwarded_ store and replays the accepted subsequence in batch order,
  // so link-store state and verdicts are identical to sequential calls.
  const std::size_t link_count = neighbors_.size();
  std::vector<std::vector<char>> covered(link_count);
  // Materialize the link stores up front: forwarded_mutable mutates the
  // map and must not run concurrently.
  std::vector<store::SubscriptionStore*> link_stores(link_count, nullptr);
  for (std::size_t l = 0; l < link_count; ++l) {
    if (!origin.local && origin.neighbor == neighbors_[l]) continue;
    link_stores[l] = &forwarded_mutable(neighbors_[l]);
  }
  exec::ThreadPool::run(pool, link_count, [&](std::size_t l) {
    if (link_stores[l] == nullptr) return;  // origin link: nothing to do
    covered[l].resize(accepted_subs.size(), 0);
    for (std::size_t j = 0; j < accepted_subs.size(); ++j) {
      covered[l][j] = link_stores[l]->insert(*accepted_subs[j]).covered ? 1 : 0;
    }
  });

  // Merge: forward lists in neighbour order, suppressions accumulated —
  // the exact shape sequential handle_subscription calls produce.
  for (std::size_t j = 0; j < accepted.size(); ++j) {
    auto& forward_to = forward_lists[accepted[j]];
    for (std::size_t l = 0; l < link_count; ++l) {
      if (link_stores[l] == nullptr) continue;
      if (covered[l][j]) {
        if (suppressed_out) ++*suppressed_out;
        continue;
      }
      forward_to.push_back(neighbors_[l]);
    }
  }
  return forward_lists;
}

Broker::UnsubscriptionOutcome Broker::handle_unsubscription(
    SubscriptionId id, const Origin& origin) {
  UnsubscriptionOutcome outcome;
  const RouteEntry* departing = routing_table_.find(id);
  if (departing == nullptr) return outcome;
  // Capture the reverse-path origin before the entry dies: the publish
  // lanes are partitioned by it, so the mirror erase needs it.
  const Origin route_origin = departing->origin;
  (void)routing_table_.erase(id);
  (void)routed_.erase(id);
  lane_erase(id, route_origin);

  for (const BrokerId neighbor : neighbors_) {
    if (!origin.local && origin.neighbor == neighbor) continue;
    const auto store_it = forwarded_.find(neighbor);
    if (store_it == forwarded_.end()) continue;
    // Only links that actually carried the subscription see the
    // unsubscription. If the departing subscription was covering others on
    // this link, those get promoted back to active and must be announced
    // to the neighbour now — it never saw them while they were suppressed.
    if (!store_it->second->contains(id)) continue;
    const bool was_active = store_it->second->is_active(id);
    const auto erased = store_it->second->erase_reporting(id);
    if (was_active) outcome.forward_to.push_back(neighbor);
    for (const SubscriptionId promoted_id : erased.promoted) {
      const RouteEntry* route = routing_table_.find(promoted_id);
      if (route == nullptr) continue;  // also being removed
      outcome.reannounce.emplace_back(neighbor, route->sub);
    }
  }
  return outcome;
}

void Broker::route_matches_into(std::vector<SubscriptionId>& ids,
                                const Origin& origin,
                                PublicationRoute& route) const {
  // Shard-merged ids arrive shard-major; sort so downstream order is
  // independent of the shard count.
  std::sort(ids.begin(), ids.end());
  route.local_matches.clear();
  route.destinations.clear();
  for (const SubscriptionId sid : ids) {
    const RouteEntry* entry = routing_table_.find(sid);
    if (entry == nullptr) continue;
    if (entry->origin.local) {
      route.local_matches.push_back(sid);
      continue;
    }
    if (!origin.local && entry->origin.neighbor == origin.neighbor) {
      continue;  // never send a publication back where it came from
    }
    if (std::find(route.destinations.begin(), route.destinations.end(),
                  entry->origin.neighbor) == route.destinations.end()) {
      route.destinations.push_back(entry->origin.neighbor);
    }
  }
}

const Broker::PublicationRoute& Broker::handle_publication(
    const Publication& pub, const Origin& origin,
    PublishScratch& scratch) const {
  scratch.ids.clear();
  routed_.match_active(pub, scratch.ids);
  route_matches_into(scratch.ids, origin, scratch.route);
  return scratch.route;
}

std::vector<BrokerId> Broker::handle_publication(
    const Publication& pub, const Origin& origin,
    std::vector<SubscriptionId>& local_matches) const {
  PublishScratch scratch;
  const PublicationRoute& route = handle_publication(pub, origin, scratch);
  local_matches.insert(local_matches.end(), route.local_matches.begin(),
                       route.local_matches.end());
  return std::move(scratch.route.destinations);
}

void Broker::match_batch(std::span<const Publication> pubs,
                         const Origin& origin,
                         std::vector<PublicationRoute>& out,
                         exec::ThreadPool* pool) const {
  routed_.match_active_batch(pubs, batch_ids_scratch_, pool);
  out.resize(pubs.size());
  for (std::size_t p = 0; p < pubs.size(); ++p) {
    route_matches_into(batch_ids_scratch_[p], origin, out[p]);
  }
}

std::vector<Broker::PublicationRoute> Broker::match_batch(
    std::span<const Publication> pubs, const Origin& origin,
    exec::ThreadPool* pool) const {
  std::vector<PublicationRoute> routes;
  match_batch(pubs, origin, routes, pool);
  return routes;
}

std::vector<std::pair<BrokerId, Subscription>> Broker::handle_expiry(
    SubscriptionId id) {
  // Expiry is an unsubscription with no origin and no forwarding: peers
  // run their own timers. Reuse the unsubscription path with a synthetic
  // local origin and drop the forward list.
  UnsubscriptionOutcome outcome =
      handle_unsubscription(id, Origin{true, kInvalidBroker});
  return std::move(outcome.reannounce);
}

std::vector<SubscriptionId> Broker::routed_ids() const {
  std::vector<SubscriptionId> ids;
  ids.reserve(routing_table_.size());
  routing_table_.for_each(
      [&](SubscriptionId sid, const RouteEntry&) { ids.push_back(sid); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<SubscriptionId> Broker::subscriptions_from(const Origin& origin) const {
  std::vector<SubscriptionId> ids;
  routing_table_.for_each([&](SubscriptionId sid, const RouteEntry& entry) {
    if (entry.origin == origin) ids.push_back(sid);
  });
  return ids;
}

Broker::Snapshot Broker::export_snapshot() const {
  Snapshot snapshot;
  snapshot.id = id_;
  snapshot.routes.reserve(routing_table_.size());
  routing_table_.for_each([&](SubscriptionId, const RouteEntry& entry) {
    snapshot.routes.push_back({entry.sub, entry.origin});
  });
  // FlatMap iteration order is a hash artifact; canonicalize by id so two
  // snapshots of identical logical state are byte-identical.
  std::sort(snapshot.routes.begin(), snapshot.routes.end(),
            [](const Snapshot::RouteRecord& a, const Snapshot::RouteRecord& b) {
              return a.sub.id() < b.sub.id();
            });
  for (const BrokerId neighbor : neighbors_) {
    const auto it = forwarded_.find(neighbor);
    if (it == forwarded_.end()) continue;
    snapshot.links.emplace_back(neighbor, it->second->export_snapshot());
  }
  snapshot.seen_tokens.assign(seen_publications_.begin(),
                              seen_publications_.end());
  std::sort(snapshot.seen_tokens.begin(), snapshot.seen_tokens.end());
  return snapshot;
}

void Broker::import_snapshot(const Snapshot& snapshot) {
  if (snapshot.id != id_) {
    throw std::invalid_argument(
        "Broker::import_snapshot: snapshot belongs to another broker id");
  }
  if (routing_table_.size() != 0 || !forwarded_.empty() ||
      !seen_publications_.empty()) {
    throw std::logic_error("Broker::import_snapshot: broker is not empty");
  }
  routing_table_.reserve(snapshot.routes.size());
  for (const Snapshot::RouteRecord& record : snapshot.routes) {
    if (!routing_table_.try_emplace(record.sub.id(), record.sub, record.origin)
             .second) {
      throw std::invalid_argument(
          "Broker::import_snapshot: duplicate routing-table id");
    }
    // Rebuild the derived match index; it is coverage-free (kNone) and
    // sorts matches by id, so rebuild order is decision-neutral.
    (void)routed_.insert(record.sub);
    lane_insert(record.sub, record.origin);
  }
  for (const auto& [neighbor, store_snapshot] : snapshot.links) {
    if (std::find(neighbors_.begin(), neighbors_.end(), neighbor) ==
        neighbors_.end()) {
      throw std::invalid_argument(
          "Broker::import_snapshot: link snapshot for unknown neighbour");
    }
    // forwarded_mutable builds the store with this broker's per-link
    // config and seed; the snapshot then overwrites its decision state
    // (incl. the engine RNG stream captured at export).
    forwarded_mutable(neighbor).import_snapshot(store_snapshot);
  }
  seen_publications_.insert(snapshot.seen_tokens.begin(),
                            snapshot.seen_tokens.end());
}

std::vector<std::uint8_t> Broker::snapshot() const {
  wire::ByteWriter out;
  wire::write_frame_header(out, wire::kBrokerSnapshotMagic);
  wire::write_broker_snapshot(out, export_snapshot());
  return out.take();
}

void Broker::restore(std::span<const std::uint8_t> bytes) {
  wire::ByteReader in(bytes);
  wire::read_frame_header(in, wire::kBrokerSnapshotMagic, "broker");
  const Snapshot snapshot = wire::read_broker_snapshot(in);
  if (!in.at_end()) {
    throw wire::DecodeError("wire: trailing bytes after broker snapshot");
  }
  import_snapshot(snapshot);
}

}  // namespace psc::routing
