#include "routing/broker.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace psc::routing {

using core::Publication;
using core::Subscription;
using core::SubscriptionId;

Broker::Broker(BrokerId id, store::StoreConfig store_config, std::uint64_t seed)
    : id_(id), store_config_(store_config), seed_(seed) {}

void Broker::add_neighbor(BrokerId neighbor) {
  if (std::find(neighbors_.begin(), neighbors_.end(), neighbor) !=
      neighbors_.end()) {
    return;
  }
  neighbors_.push_back(neighbor);
}

store::SubscriptionStore& Broker::forwarded_mutable(BrokerId neighbor) {
  auto it = forwarded_.find(neighbor);
  if (it == forwarded_.end()) {
    // Derive a per-link seed so link stores have independent RNG streams
    // while the whole network stays reproducible.
    std::uint64_t mix = seed_ ^ (static_cast<std::uint64_t>(id_) << 32) ^ neighbor;
    it = forwarded_
             .emplace(neighbor, std::make_unique<store::SubscriptionStore>(
                                    store_config_, util::splitmix64(mix)))
             .first;
  }
  return *it->second;
}

const store::SubscriptionStore* Broker::forwarded_store(BrokerId neighbor) const {
  const auto it = forwarded_.find(neighbor);
  return it == forwarded_.end() ? nullptr : it->second.get();
}

std::vector<BrokerId> Broker::handle_subscription(const Subscription& sub,
                                                  const Origin& origin,
                                                  std::uint64_t* suppressed_out) {
  // Duplicate flood suppression: if we already route this subscription,
  // do not re-forward (cycles in the overlay graph are cut here).
  if (routing_table_.count(sub.id()) > 0) return {};
  routing_table_.emplace(sub.id(), RouteEntry{sub, origin});

  std::vector<BrokerId> forward_to;
  for (const BrokerId neighbor : neighbors_) {
    if (!origin.local && origin.neighbor == neighbor) continue;
    store::SubscriptionStore& link_store = forwarded_mutable(neighbor);
    const store::InsertResult inserted = link_store.insert(sub);
    if (inserted.covered) {
      if (suppressed_out) ++*suppressed_out;
      continue;  // neighbour already holds a covering set; stay silent
    }
    forward_to.push_back(neighbor);
  }
  return forward_to;
}

Broker::UnsubscriptionOutcome Broker::handle_unsubscription(
    SubscriptionId id, const Origin& origin) {
  UnsubscriptionOutcome outcome;
  const auto it = routing_table_.find(id);
  if (it == routing_table_.end()) return outcome;
  routing_table_.erase(it);

  for (const BrokerId neighbor : neighbors_) {
    if (!origin.local && origin.neighbor == neighbor) continue;
    const auto store_it = forwarded_.find(neighbor);
    if (store_it == forwarded_.end()) continue;
    // Only links that actually carried the subscription see the
    // unsubscription. If the departing subscription was covering others on
    // this link, those get promoted back to active and must be announced
    // to the neighbour now — it never saw them while they were suppressed.
    if (!store_it->second->contains(id)) continue;
    const bool was_active = store_it->second->is_active(id);
    const auto erased = store_it->second->erase_reporting(id);
    if (was_active) outcome.forward_to.push_back(neighbor);
    for (const SubscriptionId promoted_id : erased.promoted) {
      const auto route = routing_table_.find(promoted_id);
      if (route == routing_table_.end()) continue;  // also being removed
      outcome.reannounce.emplace_back(neighbor, route->second.sub);
    }
  }
  return outcome;
}

std::vector<BrokerId> Broker::handle_publication(
    const Publication& pub, const Origin& origin,
    std::vector<SubscriptionId>& local_matches) {
  std::vector<BrokerId> destinations;
  for (const auto& [sid, entry] : routing_table_) {
    if (!pub.matches(entry.sub)) continue;
    if (entry.origin.local) {
      local_matches.push_back(sid);
      continue;
    }
    if (!origin.local && entry.origin.neighbor == origin.neighbor) {
      continue;  // never send a publication back where it came from
    }
    if (std::find(destinations.begin(), destinations.end(),
                  entry.origin.neighbor) == destinations.end()) {
      destinations.push_back(entry.origin.neighbor);
    }
  }
  return destinations;
}

std::vector<std::pair<BrokerId, Subscription>> Broker::handle_expiry(
    SubscriptionId id) {
  // Expiry is an unsubscription with no origin and no forwarding: peers
  // run their own timers. Reuse the unsubscription path with a synthetic
  // local origin and drop the forward list.
  UnsubscriptionOutcome outcome =
      handle_unsubscription(id, Origin{true, kInvalidBroker});
  return std::move(outcome.reannounce);
}

std::vector<SubscriptionId> Broker::subscriptions_from(const Origin& origin) const {
  std::vector<SubscriptionId> ids;
  for (const auto& [sid, entry] : routing_table_) {
    if (entry.origin == origin) ids.push_back(sid);
  }
  return ids;
}

}  // namespace psc::routing
