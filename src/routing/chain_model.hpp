// Chain-propagation model (paper, Section 5, Figure 5 and Equation 2).
//
// Setting: a new subscription s is issued at broker B1 of a chain
// B1-B2-...-Bn on which the covering set s1..sk has already propagated.
// The engine at B1 erroneously declares s covered with probability at most
// delta = (1 - rho_w)^d, so s is withheld. A publication p matching s (but
// no s_i) appears at each broker with probability rho. Equation 2 gives the
// probability that p is still found (i.e. reaches s's subscriber) despite
// the withheld forwarding:
//
//   P = sum_{i=1..n} rho * [ (1 - rho) * (1 - (1 - rho_w)^d) ]^(i-1)
//
// We provide the analytic evaluation plus a Monte-Carlo simulation of the
// same process so benchmarks can confirm the closed form on the simulator.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace psc::routing {

struct ChainParams {
  std::size_t broker_count = 10;  ///< n
  double rho = 0.1;               ///< P(matching publication at a broker)
  double rho_w = 0.01;            ///< witness probability of the instance
  std::uint64_t d = 100;          ///< RSPC trials the checker would run
};

/// Equation 2, evaluated in closed form.
[[nodiscard]] double chain_delivery_probability(const ChainParams& params);

/// Monte-Carlo estimate of the same quantity over `runs` simulated chains.
/// Each run walks the chain hop by hop: a broker holds a matching
/// publication with probability rho; the subscription is re-detected as
/// uncovered (and thus forwarded onward) when any of the d point guesses
/// hits a witness, which happens with probability 1 - (1 - rho_w)^d.
[[nodiscard]] double simulate_chain_delivery(const ChainParams& params,
                                             std::uint64_t runs, util::Rng& rng);

}  // namespace psc::routing
