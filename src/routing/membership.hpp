// Membership — the shared vocabulary and link-graph state machine behind
// runtime overlay mutation (peer join/leave/crash/replace, link fail/heal).
//
// Three independent components must agree, transition for transition, on
// what the overlay's membership looks like: the BrokerNetwork (which moves
// real state around on every event), the FlatOracle (which only needs
// reachability to compute ground-truth delivered sets), and the workload
// generator (which must emit only feasible event sequences). LinkState is
// that single source of truth: each of the three owns one instance and
// drives it through the same mutations, so the *policy* decisions — which
// repair links to add when a peer leaves, which failed links a replacement
// heals — are made by one function and can never drift apart. The
// *correctness* question (does the overlay deliver exactly what the flat
// table says?) stays independent: the oracle never looks at routing state,
// only at components.
//
// Forest invariant: the LIVE link set always forms a spanning forest of
// the alive brokers. Reverse-path forwarding with coverage pruning is the
// paper's tree-based model — on a cyclic overlay, purging routes learned
// over a failed link would wrongly unsubscribe subscriptions still
// reachable the other way around the cycle. Every mutation preserves the
// invariant: attach/heal of a same-component pair throws, a leave repairs
// by starring the leaver's neighbours (which a tree guarantees are in
// distinct components), and a replacement heals only the subset of its
// former links that still bridge distinct components. Cyclic *universes*
// (rings, meshes) are expressed as a forest plus STANDBY links — bridges
// that are provisioned but down, eligible for heal_link when a partition
// makes them useful (SNIPPETS.md Snippet 1's dynamic-bridge shapes).
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace psc::routing {

using BrokerId = std::uint32_t;  // mirrors routing/broker.hpp

/// Membership event kinds, shared by the churn-trace codec (wire), the
/// workload generator, and the churn driver. Values are wire-stable.
enum class MembershipOpKind : std::uint8_t {
  kJoin = 1,      ///< new broker attaches to an existing one
  kLeave = 2,     ///< graceful departure; overlay repaired in place
  kCrash = 3,     ///< broker dies, state lost; links fail unilaterally
  kReplace = 4,   ///< crashed broker replaced from its snapshot image
  kFailLink = 5,  ///< link down: partition (until heal or replacement)
  kHealLink = 6,  ///< failed/standby link up, with re-announcement
};

/// The static shape a membership workload is generated against: initial
/// broker count, the live spanning-forest links, and the standby bridges.
/// Extracted from a built network via BrokerNetwork::universe().
struct MembershipUniverse {
  std::size_t brokers = 0;
  std::vector<std::pair<BrokerId, BrokerId>> links;
  std::vector<std::pair<BrokerId, BrokerId>> standby;
};

/// Alive set + live/failed link sets + component queries + repair plans.
/// Mutators validate the forest invariant and throw std::invalid_argument
/// (bad ids, unknown links) or std::logic_error (invariant violations).
class LinkState {
 public:
  LinkState() = default;

  /// Seeds the state from a universe: all brokers alive, `links` live,
  /// `standby` failed-but-provisioned.
  explicit LinkState(const MembershipUniverse& universe);

  /// Adds a broker (dense ids); returns its id. Alive, no links.
  BrokerId add_broker();

  /// Adds a live link. Throws std::logic_error if both endpoints are alive
  /// and already connected (cycle), std::invalid_argument on bad ids.
  void add_link(BrokerId a, BrokerId b);

  /// Registers a provisioned-but-down bridge (heal_link brings it up).
  void add_standby(BrokerId a, BrokerId b);

  /// Moves a live link to the failed set (partition event).
  void fail_link(BrokerId a, BrokerId b);

  /// Moves a failed/standby link to the live set. Throws std::logic_error
  /// if the endpoints are already in one component (would close a cycle).
  void heal_link(BrokerId a, BrokerId b);

  /// Graceful leave: removes b and every incident link (live and failed),
  /// then repairs by starring b's former live-link neighbours (ascending
  /// id, first neighbour is the hub), skipping pairs a prior repair
  /// already connected. Returns the repair links actually added.
  std::vector<std::pair<BrokerId, BrokerId>> remove_peer(BrokerId b);

  /// Crash: b dies; every incident live link moves to the failed set
  /// (replacement heals them; until then they partition). Returns the
  /// links that failed.
  std::vector<std::pair<BrokerId, BrokerId>> crash_peer(BrokerId b);

  /// Restore-only: marks a broker dead with no repair plan, for rebuilding
  /// a serialized alive bitmap. Throws std::logic_error if a live link is
  /// still incident (a snapshotted dead broker never has one — crash and
  /// leave both take their links down first).
  void set_dead(BrokerId b);

  /// Replacement: b comes back alive and heals, in ascending-peer order,
  /// each former (failed) link whose far endpoint is alive and still in a
  /// different component. Returns the links healed.
  std::vector<std::pair<BrokerId, BrokerId>> replace_peer(BrokerId b);

  [[nodiscard]] std::size_t broker_count() const noexcept { return alive_.size(); }
  [[nodiscard]] std::size_t alive_count() const noexcept;
  [[nodiscard]] bool is_alive(BrokerId b) const;
  [[nodiscard]] bool has_link(BrokerId a, BrokerId b) const;
  [[nodiscard]] bool has_failed_link(BrokerId a, BrokerId b) const;

  /// Live-link neighbours of `b`, ascending.
  [[nodiscard]] std::vector<BrokerId> neighbors(BrokerId b) const;

  /// Component id of an ALIVE broker under the live link set; dead brokers
  /// belong to no component (same_component is false for them).
  [[nodiscard]] bool same_component(BrokerId a, BrokerId b) const;
  [[nodiscard]] std::size_t component_count() const;

  [[nodiscard]] const std::set<std::pair<BrokerId, BrokerId>>& live_links()
      const noexcept {
    return links_;
  }
  [[nodiscard]] const std::set<std::pair<BrokerId, BrokerId>>& failed_links()
      const noexcept {
    return failed_;
  }

 private:
  std::vector<char> alive_;
  /// Normalized (min, max) pairs; std::set for deterministic iteration.
  std::set<std::pair<BrokerId, BrokerId>> links_;
  std::set<std::pair<BrokerId, BrokerId>> failed_;

  mutable std::vector<std::uint32_t> component_;
  mutable bool components_dirty_ = true;

  void check_id(BrokerId b, const char* what) const;
  void refresh_components() const;
};

}  // namespace psc::routing
