// Broker — one node of the distributed pub/sub overlay (paper, Section 2).
//
// State, per reverse-path forwarding:
//   * routing_table_: subscription -> the neighbour (or local client) it
//     arrived from. Publications matching the subscription are sent toward
//     that neighbour (reverse path of the subscription flood).
//   * routed_: a sharded, index-accelerated mirror of the routing table's
//     subscriptions (exec::ShardedStore, coverage-free). Publication
//     matching stabs this instead of scanning the routing table, and the
//     batch entry points fan its shards out across a thread pool.
//   * forwarded_[n]: store of subscriptions this broker has propagated to
//     neighbour n. A new subscription is forwarded to n only if it is not
//     covered (per the configured policy) by what n already received —
//     the paper's traffic-suppression step, and where the probabilistic
//     group check plugs in.
//
// Concurrency model: a Broker is externally single-threaded — one event
// (or one batch call) at a time. Parallelism lives INSIDE the batch entry
// points, which fan out across state that is disjoint by construction
// (routed_'s shards; the per-link forwarded_ stores) and merge results in
// a deterministic order, so every batch call returns exactly what the
// equivalent sequence of single-message calls would have returned.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "exec/sharded_store.hpp"
#include "exec/thread_pool.hpp"
#include "sim/metrics.hpp"
#include "store/subscription_store.hpp"
#include "util/flat_map.hpp"

namespace psc::routing {

using BrokerId = std::uint32_t;
inline constexpr BrokerId kInvalidBroker = 0xffffffffU;

/// Where a subscription/publication entered this broker from.
struct Origin {
  bool local = false;        ///< from a directly-attached client
  BrokerId neighbor = kInvalidBroker;  ///< valid when !local

  friend bool operator==(const Origin&, const Origin&) = default;
};

/// Per-broker state. The BrokerNetwork owns Brokers and moves messages.
class Broker {
 public:
  /// `match_shards` partitions the local publication-match index
  /// (see exec::ShardedStore); 1 keeps it sequential-equivalent while
  /// still index-accelerated.
  Broker(BrokerId id, store::StoreConfig store_config, std::uint64_t seed,
         std::size_t match_shards = 1);

  [[nodiscard]] BrokerId id() const noexcept { return id_; }

  void add_neighbor(BrokerId neighbor);
  [[nodiscard]] const std::vector<BrokerId>& neighbors() const noexcept {
    return neighbors_;
  }

  /// Detaches a neighbour link: removes it from the neighbour list and
  /// drops its forwarded-store coverage state. A later re-attach starts
  /// from a fresh store via announce_all_to — coverage decisions made for
  /// the dead link describe state the peer no longer holds, so they must
  /// not survive the link. No-op if `neighbor` is not attached.
  void remove_neighbor(BrokerId neighbor);

  /// Outcome of re-announcing the full routing table over a fresh link.
  struct AnnounceOutcome {
    /// Subscriptions the network must flood over the link (ascending id).
    std::vector<core::Subscription> announce;
    std::uint64_t suppressed = 0;  ///< withheld by link-store coverage
  };

  /// Link-attach re-announcement (membership heal/join/repair): seeds the
  /// forwarded store of `neighbor` — which must be fresh, i.e. the link
  /// carries no coverage state yet — with every routed subscription in
  /// canonical id order, and returns the uncovered ones. Routes whose
  /// reverse path already points at `neighbor` are excluded (none exist on
  /// a genuinely fresh attach; the guard keeps misuse from echoing).
  /// Id order makes the link store's decisions (and its engine RNG
  /// consumption) a pure function of the routed set, independent of the
  /// hash-map iteration order the table happens to have.
  /// Throws std::invalid_argument if `neighbor` is not attached,
  /// std::logic_error if the link store already exists.
  [[nodiscard]] AnnounceOutcome announce_all_to(BrokerId neighbor);

  /// Handles a subscription arriving from `origin`. Records the reverse
  /// path and returns the neighbours the subscription must be forwarded to:
  /// all neighbours except the origin, minus those whose forwarded-set
  /// already covers it. `suppressed_out`, when non-null, receives the
  /// number of links on which coverage suppressed forwarding.
  [[nodiscard]] std::vector<BrokerId> handle_subscription(
      const core::Subscription& sub, const Origin& origin,
      std::uint64_t* suppressed_out = nullptr);

  /// Batch form of handle_subscription: all of `subs` arrive from `origin`
  /// in batch order. Returns one forward list per subscription, equal to
  /// what sequential handle_subscription calls would have produced
  /// (duplicates of already-routed ids get an empty list). The per-link
  /// coverage checks — the expensive part — fan out across `pool` with one
  /// lane per outgoing link; nullptr runs inline. `suppressed_out`
  /// accumulates suppressed link-forwards across the whole batch.
  [[nodiscard]] std::vector<std::vector<BrokerId>> insert_batch(
      std::span<const core::Subscription> subs, const Origin& origin,
      exec::ThreadPool* pool = nullptr, std::uint64_t* suppressed_out = nullptr);

  /// Expires a subscription locally (paper, Section 5: expiration times as
  /// the message-free alternative to unsubscription flooding). Every
  /// broker that received the subscription fires its own expiry timer, so
  /// no unsubscription traffic is generated; only covered subscriptions
  /// promoted on this broker's links still need announcing.
  [[nodiscard]] std::vector<std::pair<BrokerId, core::Subscription>>
  handle_expiry(core::SubscriptionId id);

  /// Outcome of an unsubscription at this broker.
  struct UnsubscriptionOutcome {
    /// Neighbours that previously received the subscription and must see
    /// the unsubscription.
    std::vector<BrokerId> forward_to;
    /// Per-link re-announcements: subscriptions that were suppressed as
    /// covered on a link and became active again when the coverer left
    /// (paper, Section 5 — covered subscriptions are "promoted").
    std::vector<std::pair<BrokerId, core::Subscription>> reannounce;
  };

  /// Handles an unsubscription arriving from `origin`.
  [[nodiscard]] UnsubscriptionOutcome handle_unsubscription(
      core::SubscriptionId id, const Origin& origin);

  /// Handles a publication arriving from `origin`. Returns the neighbours
  /// the publication must travel to (reverse paths of matching
  /// subscriptions) and reports local matches via `local_matches`.
  /// Matching runs against the sharded local index; `local_matches` comes
  /// back sorted by id and destinations in first-match order, both
  /// deterministic and independent of the shard count.
  [[nodiscard]] std::vector<BrokerId> handle_publication(
      const core::Publication& pub, const Origin& origin,
      std::vector<core::SubscriptionId>& local_matches) const;

  /// Where one publication of a batch must travel.
  struct PublicationRoute {
    std::vector<core::SubscriptionId> local_matches;  ///< sorted by id
    std::vector<BrokerId> destinations;  ///< first-match order, deduplicated
  };

  /// Caller-owned scratch for the zero-allocation publish path: the match
  /// buffer and route vectors are reused across calls, so once warm a
  /// steady-state publish performs no heap allocations end to end
  /// (pinned by tests/publish_alloc_test.cpp). One scratch per calling
  /// thread; its contents are valid until the next call that uses it.
  struct PublishScratch {
    std::vector<core::SubscriptionId> ids;
    PublicationRoute route;
  };

  /// Scratch form of handle_publication: matches `pub` against the local
  /// index into `scratch` and returns the routed result (a reference into
  /// `scratch.route`). Identical decisions and ordering to the
  /// vector-returning overload.
  const PublicationRoute& handle_publication(const core::Publication& pub,
                                             const Origin& origin,
                                             PublishScratch& scratch) const;

  /// Batch form of handle_publication: all of `pubs` arrive from `origin`.
  /// Matching fans out across the local index's shards on `pool` (nullptr
  /// runs inline); results are in input order and identical to sequential
  /// handle_publication calls.
  [[nodiscard]] std::vector<PublicationRoute> match_batch(
      std::span<const core::Publication> pubs, const Origin& origin,
      exec::ThreadPool* pool = nullptr) const;

  /// Out-parameter form of match_batch: `out` is resized to pubs.size()
  /// and each route's vectors are overwritten in place (capacity kept), so
  /// a caller reusing one `out` across steady-state batches avoids the
  /// per-publication vector churn of the returning overload.
  void match_batch(std::span<const core::Publication> pubs,
                   const Origin& origin, std::vector<PublicationRoute>& out,
                   exec::ThreadPool* pool = nullptr) const;

  /// Duplicate suppression for publications on cyclic overlays: marks the
  /// (network-assigned) token as seen and reports whether it was new.
  /// Without this, a publication whose reverse paths point both ways
  /// around a cycle bounces until the simulation horizon.
  [[nodiscard]] bool mark_publication_seen(std::uint64_t token) {
    return seen_publications_.insert(token).second;
  }

  /// All subscription ids whose reverse path points at `origin`.
  [[nodiscard]] std::vector<core::SubscriptionId> subscriptions_from(
      const Origin& origin) const;

  [[nodiscard]] std::size_t routing_table_size() const noexcept {
    return routing_table_.size();
  }

  /// True iff this broker's routing table holds `id` (the network layer
  /// uses this to re-derive per-broker TTL timers when restoring a
  /// snapshot — only brokers that route a subscription armed one).
  [[nodiscard]] bool routes(core::SubscriptionId id) const {
    return routing_table_.find(id) != nullptr;
  }

  /// Every routed subscription id, ascending — the membership layer's
  /// ghost-route audit walks these against the client registry.
  [[nodiscard]] std::vector<core::SubscriptionId> routed_ids() const;

  /// Forwarded-store of a neighbour link (tests introspect coverage state).
  [[nodiscard]] const store::SubscriptionStore* forwarded_store(
      BrokerId neighbor) const;

  /// The sharded local match index (tests introspect shard placement).
  [[nodiscard]] const exec::ShardedStore& match_index() const noexcept {
    return routed_;
  }

  // --- publish lanes (staged pipeline support) -------------------------
  //
  // The staged publish pipeline (routing/publish_pipeline.hpp) needs the
  // routed set partitioned BY ORIGIN, so its route stage can classify a
  // matched id by which lane emitted it instead of looking every id up in
  // the routing table: local-lane matches ARE the local deliveries, and a
  // neighbour lane with any match IS a destination. Lanes mirror the
  // routing table exactly (same inserts/erases), cost one extra copy of
  // the routed set, and are opt-in for that reason.

  /// Origin-partitioned mirror of the routing table. `local` holds every
  /// local-origin route (sharded like the match index so pipeline workers
  /// can own disjoint shards); `neighbor[n]` holds the routes whose
  /// reverse path points at n. Lanes are coverage-free stores, so the
  /// match SET per lane is exact and shard-count-invariant.
  struct PublishLanes {
    std::unique_ptr<exec::ShardedStore> local;
    /// Ordered map: lane iteration order is deterministic (ascending
    /// neighbour id). Results do not depend on it — destinations are
    /// ordered by minimum matching id — but the work schedule does.
    std::map<BrokerId, std::unique_ptr<store::SubscriptionStore>> neighbor;
  };

  /// Builds (or rebuilds) the publish lanes from the current routing
  /// table and keeps them in lockstep with every later mutation.
  /// `local_shards` partitions the local lane; 0 reuses the match-index
  /// shard count. Decision-neutral: lanes are a derived mirror.
  void enable_publish_lanes(std::size_t local_shards = 0);

  /// nullptr until enable_publish_lanes() was called.
  [[nodiscard]] const PublishLanes* publish_lanes() const noexcept {
    return lanes_ ? lanes_.get() : nullptr;
  }

  /// Complete serializable state of a broker: the routing table (with
  /// reverse-path origins), every per-link forwarded store (full coverage
  /// state incl. engine RNG — see store::SubscriptionStore::Snapshot), and
  /// the publication dedup tokens. The local match index (`routed_`) is
  /// derived state and is rebuilt on import. Binary codec:
  /// wire/snapshot.hpp; framed convenience forms: snapshot()/restore().
  struct Snapshot {
    BrokerId id = kInvalidBroker;
    struct RouteRecord {
      core::Subscription sub;  ///< id rides inside
      Origin origin;
    };
    /// Routing-table entries sorted by subscription id (table order is a
    /// hash artifact; matching sorts ids before routing, so rebuild order
    /// is decision-neutral).
    std::vector<RouteRecord> routes;
    /// Per-link coverage state, in neighbour order. Links that never
    /// forwarded anything have no entry.
    std::vector<std::pair<BrokerId, store::SubscriptionStore::Snapshot>> links;
    /// Publication tokens already processed, sorted ascending.
    std::vector<std::uint64_t> seen_tokens;
  };

  [[nodiscard]] Snapshot export_snapshot() const;

  /// Rebuilds this broker from `snapshot`. Preconditions: the broker holds
  /// no routing state (freshly constructed, or after a crash wiped it),
  /// was constructed with the same (id, config, seed, shards) as the
  /// exporter, and already has its neighbour links attached (topology is
  /// owned by the network layer and is not part of broker state).
  /// Violations throw std::invalid_argument / std::logic_error. Afterwards
  /// the broker is decision-for-decision identical to the exporter.
  void import_snapshot(const Snapshot& snapshot);

  /// Framed byte forms of export/import: a self-describing buffer with
  /// magic + format version (wire/snapshot.hpp), so a future cross-process
  /// transport can hand these to a peer verbatim.
  [[nodiscard]] std::vector<std::uint8_t> snapshot() const;
  void restore(std::span<const std::uint8_t> bytes);

 private:
  BrokerId id_;
  store::StoreConfig store_config_;
  std::uint64_t seed_;
  std::vector<BrokerId> neighbors_;

  struct RouteEntry {
    core::Subscription sub;
    Origin origin;
  };
  /// Open-addressing flat map (util::FlatMap): the publication hot path
  /// looks every matched id up here, and under churn the table itself
  /// mutates constantly — both want contiguous probes and no node churn.
  /// insert_batch reserves ahead of admission so RouteEntry pointers stay
  /// stable for the duration of a batch.
  util::FlatMap<core::SubscriptionId, RouteEntry> routing_table_;

  /// Sharded mirror of the routed subscriptions (coverage-free, exact).
  exec::ShardedStore routed_;

  /// Per outgoing link: what we already forwarded there (coverage state).
  std::unordered_map<BrokerId, std::unique_ptr<store::SubscriptionStore>> forwarded_;

  /// Publication tokens already processed (cycle suppression).
  std::unordered_set<std::uint64_t> seen_publications_;

  /// Per-publication id buffers for the out-parameter match_batch, reused
  /// across batches (batch calls are exclusive per broker by contract).
  mutable std::vector<std::vector<core::SubscriptionId>> batch_ids_scratch_;

  /// Origin-partitioned publish lanes; engaged by enable_publish_lanes.
  std::unique_ptr<PublishLanes> lanes_;
  std::size_t lane_local_shards_ = 0;

  store::SubscriptionStore& forwarded_mutable(BrokerId neighbor);

  /// Maps matching subscription ids (sorted in place) to a
  /// PublicationRoute via the routing table, honouring the never-send-back
  /// rule for `origin`. `route`'s vectors are cleared (capacity kept) and
  /// refilled — the zero-allocation workhorse behind both overloads.
  void route_matches_into(std::vector<core::SubscriptionId>& ids,
                          const Origin& origin, PublicationRoute& route) const;

  /// Lane mirror maintenance (no-ops until lanes are enabled).
  void lane_insert(const core::Subscription& sub, const Origin& origin);
  void lane_erase(core::SubscriptionId id, const Origin& origin);
  store::SubscriptionStore& neighbor_lane(BrokerId neighbor);
};

}  // namespace psc::routing
