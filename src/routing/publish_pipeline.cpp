#include "routing/publish_pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/radix_sort.hpp"
#include "wire/codec.hpp"

namespace psc::routing {

using core::Publication;
using core::SubscriptionId;

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested != PublishPipelineOptions::kAuto) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;  // one core: inline staging wins, threads lose
  return std::min<std::size_t>(hw - 1, 4);
}

}  // namespace

PublishPipeline::PublishPipeline(PublishPipelineOptions options)
    : options_(options), worker_count_(resolve_workers(options.workers)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  const std::size_t slot_count =
      worker_count_ == 0 ? 1 : options_.queue_depth;
  slots_.resize(slot_count);
  for (std::size_t w = 0; w < worker_count_; ++w) {
    ingress_.push_back(
        std::make_unique<exec::SpscRingQueue<std::uint32_t>>(slot_count + 1));
    done_.push_back(
        std::make_unique<exec::SpscRingQueue<std::uint32_t>>(slot_count + 1));
  }
  for (std::size_t w = 0; w < worker_count_; ++w) {
    stages_.add_stage("match-" + std::to_string(w),
                      [this, w](const std::atomic<bool>&) {
                        std::uint32_t token = 0;
                        // pop() returns false only once the ring is closed
                        // and drained — the stage's stop condition.
                        while (ingress_[w]->pop(token)) {
                          match_slot_for_worker(slots_[token], w);
                          (void)done_[w]->push(token);
                        }
                      });
  }
  stages_.on_stop([this] {
    for (auto& ring : ingress_) ring->close();
    for (auto& ring : done_) ring->close();
  });
}

PublishPipeline::~PublishPipeline() { stages_.stop_and_join(); }

void PublishPipeline::ensure_started() {
  if (started_ || worker_count_ == 0) return;
  stages_.start();
  started_ = true;
}

void PublishPipeline::prepare_job(const Broker& broker, const Origin& origin) {
  const Broker::PublishLanes* broker_lanes = broker.publish_lanes();
  if (broker_lanes == nullptr) {
    throw std::logic_error(
        "PublishPipeline::run: broker has no publish lanes "
        "(call Broker::enable_publish_lanes first)");
  }
  lanes_.clear();
  const exec::ShardedStore& local = *broker_lanes->local;
  for (std::size_t s = 0; s < local.shard_count(); ++s) {
    lanes_.push_back({&local.shard(s), kInvalidBroker, false});
  }
  local_lane_count_ = lanes_.size();
  for (const auto& [neighbor, lane] : broker_lanes->neighbor) {
    const bool skip = !origin.local && neighbor == origin.neighbor;
    lanes_.push_back({lane.get(), neighbor, skip});
  }
  const std::size_t neighbor_lanes = lanes_.size() - local_lane_count_;
  lane_scratch_.resize(lanes_.size());
  for (Slot& slot : slots_) {
    slot.local_ids.resize(local_lane_count_ * options_.batch_size);
    slot.neighbor_min.resize(neighbor_lanes * options_.batch_size);
  }
}

void PublishPipeline::fill_slot(Slot& slot, const Publication* pubs,
                                std::size_t count) {
  slot.pubs = pubs;
  slot.count = count;
}

void PublishPipeline::match_lane(Slot& slot, std::size_t lane_index) {
  const LaneRef& lane = lanes_[lane_index];
  if (lane_index < local_lane_count_) {
    for (std::size_t p = 0; p < slot.count; ++p) {
      auto& ids = slot.local_ids[lane_index * options_.batch_size + p];
      ids.clear();
      lane.store->match_active_unsorted(slot.pubs[p], ids);
    }
    return;
  }
  // Neighbour lane: the route stage only needs whether the lane matched
  // and the minimum matching id (the destination sort key). The skip flag
  // implements never-send-back at the stage boundary: the origin's own
  // lane is not even stabbed.
  const std::size_t base =
      (lane_index - local_lane_count_) * options_.batch_size;
  auto& scratch = lane_scratch_[lane_index];
  for (std::size_t p = 0; p < slot.count; ++p) {
    SubscriptionId min_id = core::kInvalidSubscriptionId;
    if (!lane.skip) {
      scratch.clear();
      lane.store->match_active_unsorted(slot.pubs[p], scratch);
      for (const SubscriptionId id : scratch) {
        if (min_id == core::kInvalidSubscriptionId || id < min_id) min_id = id;
      }
    }
    slot.neighbor_min[base + p] = min_id;
  }
}

void PublishPipeline::match_slot_for_worker(Slot& slot, std::size_t worker) {
  // Static round-robin lane ownership: lane l belongs to worker
  // l % worker_count_, so two workers never share a store (or its
  // query scratch).
  for (std::size_t l = worker; l < lanes_.size(); l += worker_count_) {
    match_lane(slot, l);
  }
}

void PublishPipeline::route_slot(const Slot& slot, const Origin& origin,
                                 Broker::PublicationRoute* out) {
  const std::size_t neighbor_lanes = lanes_.size() - local_lane_count_;
  for (std::size_t p = 0; p < slot.count; ++p) {
    Broker::PublicationRoute& route = out[p];
    route.local_matches.clear();
    for (std::size_t l = 0; l < local_lane_count_; ++l) {
      const auto& ids = slot.local_ids[l * options_.batch_size + p];
      route.local_matches.insert(route.local_matches.end(), ids.begin(),
                                 ids.end());
    }
    // One radix pass replaces the sequential path's two comparison sorts
    // (per-shard sort in the store + global re-sort in the route step).
    util::radix_sort_u64(route.local_matches, sort_scratch_);

    // Destinations in ascending-minimum-matching-id order == the
    // sequential path's first-match order over ascending ids.
    dest_scratch_.clear();
    for (std::size_t n = 0; n < neighbor_lanes; ++n) {
      const SubscriptionId min_id =
          slot.neighbor_min[n * options_.batch_size + p];
      if (min_id == core::kInvalidSubscriptionId) continue;
      dest_scratch_.emplace_back(min_id,
                                 lanes_[local_lane_count_ + n].neighbor);
    }
    std::sort(dest_scratch_.begin(), dest_scratch_.end());
    route.destinations.clear();
    for (const auto& [min_id, neighbor] : dest_scratch_) {
      route.destinations.push_back(neighbor);
    }
    (void)origin;  // never-send-back already applied via LaneRef::skip
  }
}

void PublishPipeline::run(const Broker& broker,
                          std::span<const Publication> pubs,
                          const Origin& origin,
                          std::vector<Broker::PublicationRoute>& out) {
  out.resize(pubs.size());
  if (pubs.empty()) return;
  prepare_job(broker, origin);

  const std::size_t batch = options_.batch_size;
  const std::size_t batches = (pubs.size() + batch - 1) / batch;

  if (worker_count_ == 0) {
    // Inline staging: decode (caller-side, run_encoded only) → match →
    // route collapse onto this thread, one slot at a time. The pipeline
    // win here is batching + the lane route stage, not parallelism.
    Slot& slot = slots_[0];
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t base = b * batch;
      fill_slot(slot, pubs.data() + base,
                std::min(batch, pubs.size() - base));
      for (std::size_t l = 0; l < lanes_.size(); ++l) match_lane(slot, l);
      route_slot(slot, origin, out.data() + base);
    }
    return;
  }

  ensure_started();
  std::size_t submitted = 0;
  std::size_t completed = 0;
  while (completed < batches) {
    // Keep the slot window full: submit until queue_depth slots are in
    // flight (or the input runs out)…
    while (submitted < batches && submitted - completed < slots_.size()) {
      const auto token =
          static_cast<std::uint32_t>(submitted % slots_.size());
      const std::size_t base = submitted * batch;
      fill_slot(slots_[token], pubs.data() + base,
                std::min(batch, pubs.size() - base));
      for (auto& ring : ingress_) (void)ring->push(token);
      ++submitted;
    }
    // …then retire the oldest slot: one completion token per worker (each
    // worker's ring is FIFO, so tokens arrive in submission order).
    const auto expect =
        static_cast<std::uint32_t>(completed % slots_.size());
    for (auto& ring : done_) {
      std::uint32_t token = 0;
      if (!ring->pop(token) || token != expect) {
        throw std::logic_error("PublishPipeline: completion ring disorder");
      }
    }
    route_slot(slots_[expect], origin, out.data() + completed * batch);
    ++completed;
  }
}

void PublishPipeline::run_encoded(
    const Broker& broker, std::span<const std::vector<std::uint8_t>> frames,
    const Origin& origin, std::vector<std::vector<std::uint8_t>>& encoded_out) {
  // Decode stage: frames → publications. Runs on the submit side; with
  // workers attached, decoding batch k overlaps the match stage of the
  // batches already in flight (run() below pulls from decoded_ storage).
  decoded_pubs_.resize(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    wire::ByteReader in(frames[i]);
    decoded_pubs_[i] = wire::read_publication(in);
    if (!in.at_end()) {
      throw wire::DecodeError(
          "PublishPipeline: trailing bytes after publication frame");
    }
  }
  run(broker, decoded_pubs_, origin, routes_scratch_);

  // Encode stage: routes → frames.
  encoded_out.resize(routes_scratch_.size());
  for (std::size_t i = 0; i < routes_scratch_.size(); ++i) {
    wire::ByteWriter out;
    encode_route(routes_scratch_[i], out);
    encoded_out[i] = out.take();
  }
}

void PublishPipeline::encode_route(const Broker::PublicationRoute& route,
                                   wire::ByteWriter& out) {
  out.varint(route.local_matches.size());
  for (const SubscriptionId id : route.local_matches) out.varint(id);
  out.varint(route.destinations.size());
  for (const BrokerId dest : route.destinations) out.varint(dest);
}

Broker::PublicationRoute PublishPipeline::decode_route(wire::ByteReader& in) {
  Broker::PublicationRoute route;
  const std::uint64_t locals = in.varint();
  route.local_matches.reserve(locals);
  for (std::uint64_t i = 0; i < locals; ++i) {
    route.local_matches.push_back(in.varint());
  }
  const std::uint64_t dests = in.varint();
  route.destinations.reserve(dests);
  for (std::uint64_t i = 0; i < dests; ++i) {
    route.destinations.push_back(static_cast<BrokerId>(in.varint()));
  }
  return route;
}

}  // namespace psc::routing
