// Transport — the hop-delivery seam between routing policy and frame
// mechanism.
//
// BrokerNetwork's routing layer decides WHAT crosses each overlay link
// (subscription floods, unsubscription cascades, promotion re-announcements,
// reverse-path publication hops); a Transport decides HOW a frame gets from
// one broker to the other and WHEN it arrives. Splitting the two (the
// policy/mechanism separation the middleware literature argues for) lets the
// same broker logic run over:
//
//   * SimTransport  (sim_transport.hpp) — the deterministic discrete-event
//     wire: every hop is one EventQueue entry at now + latency, optionally
//     routed through the go-back-N LinkChannels protocol when the wire is
//     faulty. Behavior-identical to the pre-seam code paths by
//     construction: same schedule calls in the same order, so the event
//     sequence numbers (and therefore every tie-break and every delivered
//     set) are bit-for-bit unchanged.
//   * TcpTransport  (net/ — brokers as real processes) — nonblocking
//     epoll sockets with length-prefixed frames; `now` is wall-clock and
//     timers are epoll-timeout driven.
//
// The frame unit is wire::Announcement — the one message vocabulary every
// layer of the repo already speaks (codec, link channels, snapshots).
#pragma once

#include <cstdint>
#include <functional>

#include "routing/broker.hpp"
#include "sim/event_queue.hpp"
#include "wire/codec.hpp"

namespace psc::routing {

class Transport {
 public:
  /// Receive-side demux: an Announcement arrived at `to` over the directed
  /// link from `from`. Invoked mid-cascade; the handler may send more
  /// frames (and usually does).
  using FrameHandler = std::function<void(BrokerId from, BrokerId to,
                                          const wire::Announcement& msg)>;
  using TimerId = sim::EventQueue::TimerId;
  static constexpr TimerId kNoTimer = sim::EventQueue::kNoTimer;

  virtual ~Transport() = default;

  /// Installs the receive-side handler. Must be set before the first
  /// send_frame; frames arriving with no handler installed are dropped.
  virtual void set_frame_handler(FrameHandler handler) = 0;

  /// Queues `msg` for delivery from -> to. Ordering and reliability are
  /// the implementation's contract: SimTransport delivers in-order
  /// (perfect wire) or via the reliable link protocol (faulty wire);
  /// TcpTransport rides the socket's byte stream.
  virtual void send_frame(BrokerId from, BrokerId to,
                          const wire::Announcement& msg) = 0;

  /// The transport's clock (simulated seconds or wall seconds).
  [[nodiscard]] virtual sim::SimTime now() const = 0;

  /// Arms a cancelable timer at absolute transport time `at`.
  virtual TimerId schedule_timer_at(sim::SimTime at,
                                    std::function<void()> fn) = 0;

  /// Cancels a pending timer (idempotent; unknown ids are ignored). The
  /// handler is destroyed promptly — see EventQueue::cancel for why that
  /// matters.
  virtual void cancel_timer(TimerId id) = 0;
};

}  // namespace psc::routing
