// Counting-algorithm publication matcher (Yan & García-Molina style), the
// traditional matching index the paper cites as the basis of deterministic
// pub/sub matchers. Per attribute it keeps the subscriptions' intervals in
// two sorted endpoint arrays; matching a publication counts, for every
// subscription, on how many attributes the point satisfies the predicate.
// Subscriptions whose count reaches their predicate count match.
//
// Used as (a) the deterministic matcher baseline in benchmarks and (b) a
// cross-check for the store/match layer in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"

namespace psc::baseline {

class CountingMatcher {
 public:
  /// Builds the index for a fixed schema of `m` attributes.
  explicit CountingMatcher(std::size_t attribute_count);

  /// Inserts a subscription; returns its dense slot (stable until clear()).
  /// The subscription must match the schema width.
  std::size_t insert(const core::Subscription& sub);

  /// Removes the subscription in `slot` (swap-with-last; invalidates the
  /// last slot's index, which is returned so callers can fix references).
  /// Returns the slot that was moved into `slot`, or `slot` if it was last.
  std::size_t erase(std::size_t slot);

  /// All slots whose subscription matches the publication. O(m log k + R)
  /// per attribute scan with R = endpoints passed, plus the counting pass.
  [[nodiscard]] std::vector<std::size_t> match(const core::Publication& pub) const;

  /// Subscription stored in a slot.
  [[nodiscard]] const core::Subscription& at(std::size_t slot) const {
    return subs_.at(slot);
  }

  [[nodiscard]] std::size_t size() const noexcept { return subs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return subs_.empty(); }
  void clear();

 private:
  struct Endpoint {
    core::Value value;
    std::size_t slot;
  };

  std::size_t m_;
  std::vector<core::Subscription> subs_;
  /// Per attribute: interval lows and highs sorted by value. Rebuilt lazily
  /// after mutations (publication bursts dominate in pub/sub workloads, so
  /// sort-once-match-many is the right trade).
  mutable std::vector<std::vector<Endpoint>> lows_;
  mutable std::vector<std::vector<Endpoint>> highs_;
  mutable bool dirty_ = true;

  void rebuild() const;
};

}  // namespace psc::baseline
