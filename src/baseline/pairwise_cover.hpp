// Classical deterministic pairwise coverage — the comparison baseline of the
// paper's Section 6.4. A subscription is declared redundant only when a
// *single* existing subscription covers it; group coverage is invisible to
// this algorithm, which is exactly the gap the paper's contribution closes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/subscription.hpp"

namespace psc::baseline {

/// Index of the first subscription in `set` that covers `s`, if any. O(k m).
[[nodiscard]] std::optional<std::size_t> find_covering(
    const core::Subscription& s, std::span<const core::Subscription> set);

/// True iff some single subscription in `set` covers `s`.
[[nodiscard]] bool pairwise_covered(const core::Subscription& s,
                                    std::span<const core::Subscription> set);

/// Indices of subscriptions in `set` covered by `s` (the reverse direction,
/// used when a new subscription demotes existing ones).
[[nodiscard]] std::vector<std::size_t> find_covered_by(
    const core::Subscription& s, std::span<const core::Subscription> set);

}  // namespace psc::baseline
