// Exact group-subsumption oracle via recursive box subtraction.
//
// Decides s ⊑ (s1 ∨ ... ∨ sk) deterministically by maintaining the residue
// of s after subtracting each candidate box: subtracting one box from an
// axis-aligned box yields at most 2m disjoint axis-aligned fragments.
// Worst-case exponential in k (the problem is co-NP complete), but entirely
// practical for the test-suite dimensions (m <= 8, k <= 64) where it serves
// as ground truth for the probabilistic engine, and for the Fig. 12
// false-decision counter.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/subscription.hpp"

namespace psc::baseline {

struct ExactResult {
  bool covered = false;
  /// Total uncovered measure left inside s (0 when covered). Zero-measure
  /// residues (degenerate slivers) count as covered under the continuous
  /// data model.
  core::Value uncovered_volume = 0.0;
  /// A point strictly inside the residue when not covered (a point witness).
  std::optional<std::vector<core::Value>> witness;
  /// Number of residue fragments examined (work metric for benchmarks).
  std::size_t fragments_processed = 0;
};

/// Exact decision with residue diagnostics. `fragment_limit` bounds the
/// explored fragment count to keep adversarial inputs from running away;
/// throws std::runtime_error if exceeded (tests use generous limits).
[[nodiscard]] ExactResult exact_subsumption(
    const core::Subscription& s, std::span<const core::Subscription> set,
    std::size_t fragment_limit = 1'000'000);

/// As above over a pointer set — the zero-copy entry point for callers
/// holding index-pruned candidate pointers. Precondition: no nulls.
[[nodiscard]] ExactResult exact_subsumption(
    const core::Subscription& s, std::span<const core::Subscription* const> set,
    std::size_t fragment_limit = 1'000'000);

/// Convenience: just the boolean verdict.
[[nodiscard]] bool exactly_covered(const core::Subscription& s,
                                   std::span<const core::Subscription> set);
[[nodiscard]] bool exactly_covered(
    const core::Subscription& s, std::span<const core::Subscription* const> set);

}  // namespace psc::baseline
