#include "baseline/exact_subsumption.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace psc::baseline {

namespace {

using core::Interval;
using core::Subscription;
using core::Value;

/// Lightweight box (no id, no invariant checks) for the residue worklist.
struct Box {
  std::vector<Interval> ranges;

  [[nodiscard]] bool positive_measure() const noexcept {
    for (const auto& r : ranges) {
      if (!(r.width() > 0.0)) return false;
    }
    return true;
  }

  [[nodiscard]] Value volume() const noexcept {
    Value v = 1.0;
    for (const auto& r : ranges) v *= r.width();
    return v;
  }
};

/// True iff `cut` (a subscription) fully contains `box`.
bool contains(const Subscription& cut, const Box& box) {
  for (std::size_t j = 0; j < box.ranges.size(); ++j) {
    if (!cut.range(j).contains(box.ranges[j])) return false;
  }
  return true;
}

/// True iff `cut` and `box` share positive measure.
bool overlaps(const Subscription& cut, const Box& box) {
  for (std::size_t j = 0; j < box.ranges.size(); ++j) {
    if (!cut.range(j).overlaps_interior(box.ranges[j])) return false;
  }
  return true;
}

/// Splits `box` minus `cut` into disjoint fragments appended to `out`.
/// Classic axis sweep: peel the slab below cut.lo and above cut.hi on each
/// axis, then shrink the box to the overlap and continue with the next axis.
void subtract(const Subscription& cut, Box box, std::vector<Box>& out) {
  for (std::size_t j = 0; j < box.ranges.size(); ++j) {
    const Interval cut_range = cut.range(j);
    const Interval box_range = box.ranges[j];
    if (cut_range.lo > box_range.lo) {
      Box below = box;
      below.ranges[j] = {box_range.lo, std::min(cut_range.lo, box_range.hi)};
      if (below.positive_measure()) out.push_back(std::move(below));
    }
    if (cut_range.hi < box_range.hi) {
      Box above = box;
      above.ranges[j] = {std::max(cut_range.hi, box_range.lo), box_range.hi};
      if (above.positive_measure()) out.push_back(std::move(above));
    }
    // Continue with the part of the box inside cut's span on axis j.
    box.ranges[j] = box_range.intersect(cut_range);
    if (!(box.ranges[j].width() > 0.0)) return;  // nothing left to carve
  }
}

}  // namespace

namespace {

const Subscription& deref(const Subscription& sub) noexcept { return sub; }
const Subscription& deref(const Subscription* sub) noexcept { return *sub; }

/// Shared residue-subtraction core over either a value span or a pointer
/// span (the store layer works with index-pruned pointer sets).
template <typename SetSpan>
ExactResult exact_subsumption_impl(const Subscription& s, SetSpan set,
                                   std::size_t fragment_limit) {
  ExactResult result;
  std::vector<Box> residue;
  residue.push_back(Box{{s.ranges().begin(), s.ranges().end()}});

  // A zero-measure s is covered by anything under the continuous model.
  if (!residue.front().positive_measure()) {
    result.covered = true;
    return result;
  }

  for (const auto& element : set) {
    const Subscription& cut = deref(element);
    if (residue.empty()) break;
    std::vector<Box> next;
    next.reserve(residue.size());
    for (Box& box : residue) {
      ++result.fragments_processed;
      if (result.fragments_processed > fragment_limit) {
        throw std::runtime_error("exact_subsumption: fragment limit exceeded");
      }
      if (contains(cut, box)) continue;      // fragment fully eliminated
      if (!overlaps(cut, box)) {
        next.push_back(std::move(box));      // untouched
        continue;
      }
      subtract(cut, std::move(box), next);
    }
    residue = std::move(next);
  }

  if (residue.empty()) {
    result.covered = true;
    return result;
  }

  result.covered = false;
  for (const Box& box : residue) result.uncovered_volume += box.volume();
  // Center of the first residue fragment is strictly inside it: a witness.
  std::vector<Value> witness;
  witness.reserve(residue.front().ranges.size());
  for (const Interval& r : residue.front().ranges) {
    witness.push_back(0.5 * (r.lo + r.hi));
  }
  result.witness = std::move(witness);
  return result;
}

}  // namespace

ExactResult exact_subsumption(const Subscription& s,
                              std::span<const Subscription> set,
                              std::size_t fragment_limit) {
  return exact_subsumption_impl(s, set, fragment_limit);
}

ExactResult exact_subsumption(const Subscription& s,
                              std::span<const Subscription* const> set,
                              std::size_t fragment_limit) {
  return exact_subsumption_impl(s, set, fragment_limit);
}

bool exactly_covered(const Subscription& s,
                     std::span<const Subscription> set) {
  return exact_subsumption(s, set).covered;
}

bool exactly_covered(const Subscription& s,
                     std::span<const Subscription* const> set) {
  return exact_subsumption(s, set).covered;
}

}  // namespace psc::baseline
