#include "baseline/pairwise_cover.hpp"

namespace psc::baseline {

std::optional<std::size_t> find_covering(const core::Subscription& s,
                                         std::span<const core::Subscription> set) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].covers(s)) return i;
  }
  return std::nullopt;
}

bool pairwise_covered(const core::Subscription& s,
                      std::span<const core::Subscription> set) {
  return find_covering(s, set).has_value();
}

std::vector<std::size_t> find_covered_by(const core::Subscription& s,
                                         std::span<const core::Subscription> set) {
  std::vector<std::size_t> covered;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (s.covers(set[i])) covered.push_back(i);
  }
  return covered;
}

}  // namespace psc::baseline
