#include "baseline/counting_matcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::baseline {

CountingMatcher::CountingMatcher(std::size_t attribute_count)
    : m_(attribute_count), lows_(attribute_count), highs_(attribute_count) {}

std::size_t CountingMatcher::insert(const core::Subscription& sub) {
  if (sub.attribute_count() != m_) {
    throw std::invalid_argument("CountingMatcher::insert: schema mismatch");
  }
  subs_.push_back(sub);
  dirty_ = true;
  return subs_.size() - 1;
}

std::size_t CountingMatcher::erase(std::size_t slot) {
  if (slot >= subs_.size()) {
    throw std::out_of_range("CountingMatcher::erase: bad slot");
  }
  const std::size_t last = subs_.size() - 1;
  if (slot != last) subs_[slot] = std::move(subs_[last]);
  subs_.pop_back();
  dirty_ = true;
  return slot == last ? slot : last;
}

void CountingMatcher::clear() {
  subs_.clear();
  dirty_ = true;
}

void CountingMatcher::rebuild() const {
  for (std::size_t j = 0; j < m_; ++j) {
    lows_[j].clear();
    highs_[j].clear();
    lows_[j].reserve(subs_.size());
    highs_[j].reserve(subs_.size());
    for (std::size_t slot = 0; slot < subs_.size(); ++slot) {
      lows_[j].push_back({subs_[slot].range(j).lo, slot});
      highs_[j].push_back({subs_[slot].range(j).hi, slot});
    }
    auto by_value = [](const Endpoint& a, const Endpoint& b) {
      return a.value < b.value;
    };
    std::sort(lows_[j].begin(), lows_[j].end(), by_value);
    std::sort(highs_[j].begin(), highs_[j].end(), by_value);
  }
  dirty_ = false;
}

std::vector<std::size_t> CountingMatcher::match(const core::Publication& pub) const {
  if (pub.attribute_count() != m_) {
    throw std::invalid_argument("CountingMatcher::match: schema mismatch");
  }
  if (dirty_) rebuild();

  // counts[slot] = number of attributes whose predicate the point satisfies.
  std::vector<std::size_t> counts(subs_.size(), 0);
  for (std::size_t j = 0; j < m_; ++j) {
    const core::Value v = pub.value(j);
    // Slot satisfies attribute j iff low <= v <= high. Count lows <= v,
    // then subtract slots whose high < v by walking the sorted highs.
    const auto& lows = lows_[j];
    const auto& highs = highs_[j];
    const auto low_end = std::upper_bound(
        lows.begin(), lows.end(), v,
        [](core::Value value, const Endpoint& e) { return value < e.value; });
    for (auto it = lows.begin(); it != low_end; ++it) ++counts[it->slot];
    const auto high_end = std::lower_bound(
        highs.begin(), highs.end(), v,
        [](const Endpoint& e, core::Value value) { return e.value < value; });
    for (auto it = highs.begin(); it != high_end; ++it) --counts[it->slot];
  }

  std::vector<std::size_t> matches;
  for (std::size_t slot = 0; slot < subs_.size(); ++slot) {
    if (counts[slot] == m_) matches.push_back(slot);
  }
  return matches;
}

}  // namespace psc::baseline
