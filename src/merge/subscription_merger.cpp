#include "merge/subscription_merger.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace psc::merge {

using core::Interval;
using core::Subscription;
using core::Value;

Subscription merge_pair(const Subscription& a, const Subscription& b) {
  if (a.attribute_count() != b.attribute_count()) {
    throw std::invalid_argument("merge_pair: schema mismatch");
  }
  std::vector<Interval> hull(a.attribute_count());
  for (std::size_t j = 0; j < a.attribute_count(); ++j) {
    hull[j] = a.range(j).hull(b.range(j));
  }
  return Subscription(std::move(hull), a.id());
}

double waste_ratio(const Subscription& a, const Subscription& b) {
  if (a.attribute_count() != b.attribute_count()) {
    throw std::invalid_argument("waste_ratio: schema mismatch");
  }
  Value hull_volume = 1.0;
  for (std::size_t j = 0; j < a.attribute_count(); ++j) {
    hull_volume *= a.range(j).hull(b.range(j)).width();
  }
  if (!(hull_volume > 0.0)) return 0.0;  // degenerate hull: nothing wasted
  if (!std::isfinite(hull_volume)) return 1.0;

  const Value va = a.volume();
  const Value vb = b.volume();
  Value vi = 1.0;
  for (std::size_t j = 0; j < a.attribute_count(); ++j) {
    const Interval overlap = a.range(j).intersect(b.range(j));
    vi *= overlap.is_empty() ? Value{0} : overlap.width();
    if (vi == 0.0) break;
  }
  const Value union_volume = va + vb - vi;
  const double ratio = 1.0 - static_cast<double>(union_volume / hull_volume);
  return ratio < 0.0 ? 0.0 : ratio;
}

std::vector<Subscription> merge_set(std::vector<Subscription> subs,
                                    const MergeConfig& config,
                                    MergeStats* stats) {
  if (!(config.max_waste_ratio >= 0.0 && config.max_waste_ratio <= 1.0)) {
    throw std::invalid_argument("MergeConfig: max_waste_ratio must be in [0,1]");
  }
  MergeStats local;
  const std::size_t n = subs.size();
  if (n < 2 || config.max_rounds == 0) {
    if (stats) *stats = local;
    return subs;
  }

  // Pair waste ratios are cached in a packed upper-triangular matrix and
  // only the pairs involving a freshly-merged subscription are recomputed
  // (the O(m) geometric ratio of every untouched pair is unchanged).
  // Removed subscriptions are masked out rather than erased so cache
  // indices stay stable; iteration in index order preserves the original
  // implementation's first-minimum tie-breaking exactly.
  std::vector<char> alive(n, 1);
  std::vector<double> ratio(n * (n - 1) / 2, 0.0);
  // Packed offset of pair (i, l) with i < l.
  auto at = [n](std::size_t i, std::size_t l) {
    return i * n - i * (i + 1) / 2 + (l - i - 1);
  };
  std::size_t alive_count = n;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = i + 1; l < n; ++l) {
      ratio[at(i, l)] = waste_ratio(subs[i], subs[l]);
    }
  }

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    bool merged_any = false;
    ++local.rounds;
    // One pass: find the best qualifying pair, merge, repeat within the
    // round until no pair qualifies in a full scan.
    while (alive_count >= 2) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_a = 0, best_b = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        for (std::size_t l = i + 1; l < n; ++l) {
          if (!alive[l]) continue;
          const double cached = ratio[at(i, l)];
          if (cached < best) {
            best = cached;
            best_a = i;
            best_b = l;
          }
        }
      }
      if (!(best <= config.max_waste_ratio)) break;

      Subscription merged = merge_pair(subs[best_a], subs[best_b]);
      // Waste accounting (absolute volume added beyond the exact union).
      const Value hull_volume = merged.volume();
      if (std::isfinite(hull_volume)) {
        local.waste_volume += static_cast<Value>(best) * hull_volume;
      }
      // Drop b, replace a, refresh only a's cached ratios.
      alive[best_b] = 0;
      --alive_count;
      subs[best_a] = std::move(merged);
      for (std::size_t other = 0; other < n; ++other) {
        if (!alive[other] || other == best_a) continue;
        const double fresh = waste_ratio(subs[best_a], subs[other]);
        ratio[at(other < best_a ? other : best_a,
                 other < best_a ? best_a : other)] = fresh;
      }
      ++local.merges_performed;
      merged_any = true;
    }
    if (!merged_any) break;
  }

  std::vector<Subscription> result;
  result.reserve(alive_count);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) result.push_back(std::move(subs[i]));
  }
  if (stats) *stats = local;
  return result;
}

}  // namespace psc::merge
