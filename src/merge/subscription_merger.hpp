// Subscription merging — the complementary reduction mechanism the paper
// discusses in Related Work (Crespo et al., Li et al.): replace several
// subscriptions by one box that covers them all. Unlike covering, merging
// is LOSSY in the other direction: the merged box can exceed the union, so
// publications inside the box but outside the union become false positives
// (unrequested traffic). This module implements greedy pairwise merging
// with a bounded waste ratio so the trade-off is explicit and measurable —
// bench/ablation_merge quantifies set-size savings versus false-positive
// volume when merging is stacked on top of group coverage.
#pragma once

#include <cstddef>
#include <vector>

#include "core/subscription.hpp"

namespace psc::merge {

struct MergeConfig {
  /// Maximum acceptable waste ratio for one merge:
  ///   waste = 1 - (vol(a) + vol(b) - vol(a ∩ b)) / vol(hull(a, b))
  /// 0 accepts only exact merges (hull == union, e.g. aligned slabs);
  /// 1 accepts any merge. Typical useful values: 0.05 - 0.3.
  double max_waste_ratio = 0.2;
  /// Upper bound on merge rounds (each round scans all pairs once).
  std::size_t max_rounds = 16;
};

struct MergeStats {
  std::size_t merges_performed = 0;
  std::size_t rounds = 0;
  /// Total hull volume introduced beyond the exact unions (absolute).
  core::Value waste_volume = 0.0;
};

/// The hull box of two subscriptions (smallest box covering both).
/// Requires matching schemas; throws std::invalid_argument otherwise.
[[nodiscard]] core::Subscription merge_pair(const core::Subscription& a,
                                            const core::Subscription& b);

/// Waste ratio of merging a and b (see MergeConfig). Returns 0 when one
/// covers the other. Requires finite volumes; unbounded boxes yield 1.
[[nodiscard]] double waste_ratio(const core::Subscription& a,
                                 const core::Subscription& b);

/// Greedily merges a set: repeatedly merges the pair with the smallest
/// waste ratio below the threshold until none qualifies. Ids of merged
/// results are taken from the first operand. O(rounds * k^2 * m).
[[nodiscard]] std::vector<core::Subscription> merge_set(
    std::vector<core::Subscription> subs, const MergeConfig& config,
    MergeStats* stats = nullptr);

}  // namespace psc::merge
