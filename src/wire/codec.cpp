#include "wire/codec.hpp"

#include <cmath>
#include <stdexcept>

namespace psc::wire {

using core::Interval;
using core::Publication;
using core::Subscription;
using workload::ChurnConfig;
using workload::ChurnOp;
using workload::ChurnOpKind;
using workload::ChurnTrace;

// --- core geometry ----------------------------------------------------

void write_interval(ByteWriter& out, const Interval& iv) {
  out.f64(iv.lo);
  out.f64(iv.hi);
}

Interval read_interval(ByteReader& in) {
  const double lo = in.f64();
  const double hi = in.f64();
  // A stored predicate is never empty and never NaN; both states only
  // arise from corruption (or an empty-marker leaking across the wire).
  if (std::isnan(lo) || std::isnan(hi) || lo > hi) {
    throw DecodeError("wire: interval with NaN or inverted bounds");
  }
  return Interval{lo, hi};
}

void write_subscription(ByteWriter& out, const Subscription& sub) {
  out.varint(sub.id());
  out.varint(sub.attribute_count());
  for (const Interval& iv : sub.ranges()) write_interval(out, iv);
}

Subscription read_subscription(ByteReader& in) {
  const auto id = in.varint();
  const std::size_t arity = in.count(16);  // two f64 per interval
  std::vector<Interval> ranges;
  ranges.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) ranges.push_back(read_interval(in));
  try {
    return Subscription(std::move(ranges), id);
  } catch (const std::invalid_argument& error) {
    // Constructor-level validation (empty range) becomes a decode error:
    // the bytes, not the caller, are at fault.
    throw DecodeError(std::string("wire: invalid subscription: ") + error.what());
  }
}

void write_publication(ByteWriter& out, const Publication& pub) {
  out.varint(pub.id());
  out.varint(pub.attribute_count());
  for (const core::Value value : pub.values()) out.f64(value);
}

Publication read_publication(ByteReader& in) {
  const auto id = in.varint();
  const std::size_t arity = in.count(8);  // one f64 per attribute
  std::vector<core::Value> values;
  values.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const double value = in.f64();
    if (std::isnan(value)) {
      throw DecodeError("wire: publication with NaN attribute value");
    }
    values.push_back(value);
  }
  return Publication(std::move(values), id);
}

// --- routing announcements --------------------------------------------

void write_announcement(ByteWriter& out, const Announcement& msg) {
  out.u8(static_cast<std::uint8_t>(msg.kind));
  out.varint(msg.from);
  switch (msg.kind) {
    case Announcement::Kind::kSubscribe:
      write_subscription(out, msg.sub);
      out.u8(msg.expiry.has_value() ? 1 : 0);
      if (msg.expiry) out.f64(*msg.expiry);
      break;
    case Announcement::Kind::kUnsubscribe:
      out.varint(msg.id);
      break;
    case Announcement::Kind::kPublication:
      write_publication(out, msg.pub);
      out.varint(msg.token);
      break;
    case Announcement::Kind::kMembership:
      out.u8(msg.member);
      out.varint(msg.peer);
      break;
  }
}

Announcement read_announcement(ByteReader& in) {
  Announcement msg;
  const std::uint8_t kind = in.u8();
  if (kind < 1 || kind > 4) {
    throw DecodeError("wire: unknown announcement kind " + std::to_string(kind));
  }
  msg.kind = static_cast<Announcement::Kind>(kind);
  msg.from = static_cast<std::uint32_t>(in.varint());
  switch (msg.kind) {
    case Announcement::Kind::kSubscribe: {
      msg.sub = read_subscription(in);
      const std::uint8_t has_expiry = in.u8();
      if (has_expiry > 1) throw DecodeError("wire: bad expiry flag");
      if (has_expiry) msg.expiry = in.f64();
      break;
    }
    case Announcement::Kind::kUnsubscribe:
      msg.id = in.varint();
      break;
    case Announcement::Kind::kPublication:
      msg.pub = read_publication(in);
      msg.token = in.varint();
      break;
    case Announcement::Kind::kMembership:
      msg.member = in.u8();
      if (msg.member < 1 || msg.member > 6) {
        throw DecodeError("wire: unknown membership op kind " +
                          std::to_string(msg.member));
      }
      msg.peer = static_cast<std::uint32_t>(in.varint());
      break;
  }
  return msg;
}

// --- reliable-link frames (codec v3) -----------------------------------

void write_link_frame(ByteWriter& out, const LinkFrame& frame) {
  out.u8(static_cast<std::uint8_t>(frame.kind));
  out.varint(frame.ack);
  if (frame.kind == LinkFrame::Kind::kData) {
    out.varint(frame.seq);
    out.bytes(frame.payload);
  }
}

LinkFrame read_link_frame(ByteReader& in) {
  LinkFrame frame;
  const std::uint8_t kind = in.u8();
  if (kind < 1 || kind > 2) {
    throw DecodeError("wire: unknown link frame kind " + std::to_string(kind));
  }
  frame.kind = static_cast<LinkFrame::Kind>(kind);
  frame.ack = in.varint();
  if (frame.kind == LinkFrame::Kind::kData) {
    frame.seq = in.varint();
    const auto view = in.bytes();
    frame.payload.assign(view.begin(), view.end());
    // Validate the embedded announcement eagerly: a data frame whose
    // payload does not decode is corrupt as a whole — the receiver must
    // not ack (and thereby consume) a frame it cannot interpret.
    ByteReader payload(frame.payload);
    (void)read_announcement(payload);
    if (!payload.at_end()) {
      throw DecodeError("wire: trailing bytes after link frame payload");
    }
  }
  return frame;
}

// --- churn-trace records ----------------------------------------------

void write_churn_op(ByteWriter& out, const ChurnOp& op) {
  out.u8(static_cast<std::uint8_t>(op.kind));
  out.f64(op.time);
  out.varint(op.broker);
  switch (op.kind) {
    case ChurnOpKind::kSubscribe:
      write_subscription(out, op.sub);
      break;
    case ChurnOpKind::kSubscribeTtl:
      write_subscription(out, op.sub);
      out.f64(op.ttl);
      break;
    case ChurnOpKind::kUnsubscribe:
      out.varint(op.id);
      break;
    case ChurnOpKind::kPublish:
      write_publication(out, op.pub);
      break;
    case ChurnOpKind::kAdvance:
      break;
    case ChurnOpKind::kMembership:
      out.u8(op.member);
      out.varint(op.peer);
      break;
  }
}

ChurnOp read_churn_op(ByteReader& in) {
  ChurnOp op;
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(ChurnOpKind::kMembership)) {
    throw DecodeError("wire: unknown churn op kind " + std::to_string(kind));
  }
  op.kind = static_cast<ChurnOpKind>(kind);
  op.time = in.f64();
  if (std::isnan(op.time)) throw DecodeError("wire: NaN op time");
  op.broker = static_cast<routing::BrokerId>(in.varint());
  switch (op.kind) {
    case ChurnOpKind::kSubscribe:
      op.sub = read_subscription(in);
      break;
    case ChurnOpKind::kSubscribeTtl:
      op.sub = read_subscription(in);
      op.ttl = in.f64();
      if (!(op.ttl > 0)) throw DecodeError("wire: non-positive TTL");
      break;
    case ChurnOpKind::kUnsubscribe:
      op.id = in.varint();
      break;
    case ChurnOpKind::kPublish:
      op.pub = read_publication(in);
      break;
    case ChurnOpKind::kAdvance:
      break;
    case ChurnOpKind::kMembership:
      op.member = in.u8();
      if (op.member < 1 || op.member > 6) {
        throw DecodeError("wire: unknown membership op kind " +
                          std::to_string(op.member));
      }
      op.peer = static_cast<routing::BrokerId>(in.varint());
      break;
  }
  return op;
}

namespace {

void write_churn_config(ByteWriter& out, const ChurnConfig& config) {
  out.varint(config.attribute_count);
  out.f64(config.domain_lo);
  out.f64(config.domain_hi);
  out.f64(config.subscription_rate);
  out.f64(config.publication_rate);
  out.f64(config.ttl_fraction);
  out.f64(config.immortal_fraction);
  out.f64(config.mean_lifetime);
  out.varint(config.hotspot_count);
  out.f64(config.zipf_skew);
  out.f64(config.hotspot_radius_fraction);
  out.f64(config.width_fraction_lo);
  out.f64(config.width_fraction_hi);
  out.f64(config.duration);
  out.f64(config.slot);
  out.f64(config.link_latency);
  out.f64(config.epoch_length);
  out.f64(config.membership.join_rate);
  out.f64(config.membership.leave_rate);
  out.f64(config.membership.crash_rate);
  out.f64(config.membership.partition_rate);
  out.f64(config.membership.partition_mean);
  out.f64(config.membership.replace_mean);
  out.varint(config.membership.min_brokers);
  out.varint(config.membership.max_brokers);
}

ChurnConfig read_churn_config(ByteReader& in) {
  ChurnConfig config;
  config.attribute_count = static_cast<std::size_t>(in.varint());
  config.domain_lo = in.f64();
  config.domain_hi = in.f64();
  config.subscription_rate = in.f64();
  config.publication_rate = in.f64();
  config.ttl_fraction = in.f64();
  config.immortal_fraction = in.f64();
  config.mean_lifetime = in.f64();
  config.hotspot_count = static_cast<std::size_t>(in.varint());
  config.zipf_skew = in.f64();
  config.hotspot_radius_fraction = in.f64();
  config.width_fraction_lo = in.f64();
  config.width_fraction_hi = in.f64();
  config.duration = in.f64();
  config.slot = in.f64();
  config.link_latency = in.f64();
  config.epoch_length = in.f64();
  config.membership.join_rate = in.f64();
  config.membership.leave_rate = in.f64();
  config.membership.crash_rate = in.f64();
  config.membership.partition_rate = in.f64();
  config.membership.partition_mean = in.f64();
  config.membership.replace_mean = in.f64();
  config.membership.min_brokers = static_cast<std::size_t>(in.varint());
  config.membership.max_brokers = static_cast<std::size_t>(in.varint());
  return config;
}

void write_universe(ByteWriter& out,
                    const routing::MembershipUniverse& universe) {
  out.varint(universe.brokers);
  const auto write_links =
      [&](const std::vector<std::pair<routing::BrokerId, routing::BrokerId>>&
              links) {
        out.varint(links.size());
        for (const auto& [a, b] : links) {
          out.varint(a);
          out.varint(b);
        }
      };
  write_links(universe.links);
  write_links(universe.standby);
}

routing::MembershipUniverse read_universe(ByteReader& in) {
  routing::MembershipUniverse universe;
  universe.brokers = static_cast<std::size_t>(in.varint());
  const auto read_links =
      [&](std::vector<std::pair<routing::BrokerId, routing::BrokerId>>& links) {
        const std::size_t count = in.count(2);
        links.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          const auto a = static_cast<routing::BrokerId>(in.varint());
          const auto b = static_cast<routing::BrokerId>(in.varint());
          if (a >= universe.brokers || b >= universe.brokers) {
            throw DecodeError("wire: universe link id out of range");
          }
          links.emplace_back(a, b);
        }
      };
  read_links(universe.links);
  read_links(universe.standby);
  return universe;
}

}  // namespace

namespace {

// v3 fault-schedule block: the probabilistic fault rates the trace was
// generated for, the fault-aware cascade hop bound its slot validation
// used, and the scripted burst-loss windows (absolute sim-time, per
// undirected link). Absent from v2 traces; readers default it to zero.
void write_fault_block(ByteWriter& out, const ChurnTrace& trace) {
  out.f64(trace.config.faults.link.drop_probability);
  out.f64(trace.config.faults.link.dup_probability);
  out.f64(trace.config.faults.link.reorder_probability);
  out.f64(trace.config.faults.link.delay_jitter);
  out.f64(trace.config.faults.burst_length);
  out.varint(trace.config.faults.burst_count);
  out.f64(trace.config.faults.cascade_hop_bound);
  out.varint(trace.bursts.size());
  for (const workload::LinkBurst& burst : trace.bursts) {
    out.f64(burst.start);
    out.f64(burst.end);
    out.varint(burst.a);
    out.varint(burst.b);
  }
}

void read_fault_block(ByteReader& in, ChurnTrace& trace) {
  auto& faults = trace.config.faults;
  const auto rate = [&in](const char* what) {
    const double value = in.f64();
    if (std::isnan(value) || value < 0 || value > 1) {
      throw DecodeError(std::string("wire: bad fault rate ") + what);
    }
    return value;
  };
  faults.link.drop_probability = rate("drop");
  faults.link.dup_probability = rate("dup");
  faults.link.reorder_probability = rate("reorder");
  faults.link.delay_jitter = in.f64();
  faults.burst_length = in.f64();
  faults.burst_count = static_cast<std::size_t>(in.varint());
  faults.cascade_hop_bound = in.f64();
  if (std::isnan(faults.link.delay_jitter) || faults.link.delay_jitter < 0 ||
      std::isnan(faults.burst_length) || faults.burst_length < 0 ||
      std::isnan(faults.cascade_hop_bound) || faults.cascade_hop_bound < 0) {
    throw DecodeError("wire: bad fault-schedule field");
  }
  const std::size_t burst_count = in.count(18);  // 2x f64 + 2 varints floor
  trace.bursts.reserve(burst_count);
  for (std::size_t i = 0; i < burst_count; ++i) {
    workload::LinkBurst burst;
    burst.start = in.f64();
    burst.end = in.f64();
    if (std::isnan(burst.start) || std::isnan(burst.end) ||
        burst.end < burst.start) {
      throw DecodeError("wire: inverted burst window");
    }
    burst.a = static_cast<routing::BrokerId>(in.varint());
    burst.b = static_cast<routing::BrokerId>(in.varint());
    trace.bursts.push_back(burst);
  }
}

}  // namespace

void write_churn_trace(ByteWriter& out, const ChurnTrace& trace) {
  out.u32(kTraceMagic);
  out.u32(kCodecVersion);
  write_churn_config(out, trace.config);
  out.varint(trace.broker_count);
  out.u64(trace.seed);
  out.varint(trace.publish_count);
  out.varint(trace.subscribe_count);
  out.varint(trace.membership_count);
  out.u8(trace.has_membership ? 1 : 0);
  if (trace.has_membership) write_universe(out, trace.universe);
  write_fault_block(out, trace);
  out.varint(trace.ops.size());
  for (const ChurnOp& op : trace.ops) write_churn_op(out, op);
}

ChurnTrace read_churn_trace(ByteReader& in) {
  if (in.u32() != kTraceMagic) {
    throw DecodeError("wire: not a churn trace (bad magic)");
  }
  const std::uint32_t version = in.u32();
  if (version < kMinTraceVersion || version > kCodecVersion) {
    throw DecodeError("wire: unsupported trace version " +
                      std::to_string(version));
  }
  ChurnTrace trace;
  trace.config = read_churn_config(in);
  trace.broker_count = static_cast<std::size_t>(in.varint());
  trace.seed = in.u64();
  trace.publish_count = static_cast<std::size_t>(in.varint());
  trace.subscribe_count = static_cast<std::size_t>(in.varint());
  trace.membership_count = static_cast<std::size_t>(in.varint());
  const std::uint8_t has_membership = in.u8();
  if (has_membership > 1) throw DecodeError("wire: bad membership flag");
  trace.has_membership = has_membership != 0;
  if (trace.has_membership) trace.universe = read_universe(in);
  if (version >= 3) read_fault_block(in, trace);  // v2: perfect links
  const std::size_t op_count = in.count(10);  // kind + time + broker floor
  trace.ops.reserve(op_count);
  for (std::size_t i = 0; i < op_count; ++i) {
    trace.ops.push_back(read_churn_op(in));
  }
  return trace;
}

}  // namespace psc::wire
