// Snapshot codecs — the self-describing binary format behind
// store::SubscriptionStore::export_snapshot, Broker::snapshot(), and
// BrokerNetwork::snapshot_all().
//
// Frame layout (full tables in docs/ARCHITECTURE.md, "Wire format"):
//
//   broker frame   : u32 magic "PSCB" | u32 version | broker body
//   network frame  : u32 magic "PSCN" | u32 version | network body
//
// Bodies are built from the element codecs in wire/codec.hpp plus the
// store/broker codecs below. The network body embeds broker bodies without
// their own magic (one frame per top-level artifact). Version checks are
// exact-match: the format is young enough that forward/backward bridging
// would be speculative — a mismatch throws DecodeError and the caller
// falls back to cold start (snapshots are an optimization, never the only
// copy of the truth; the op log / trace can always be replayed from
// scratch).
//
// Everything here throws wire::DecodeError on malformed input and never
// exhibits UB on truncated or bit-flipped buffers (tests/wire_test.cpp
// exercises both under ASan/UBSan).
#pragma once

#include <cstdint>

#include "routing/broker_network.hpp"
#include "store/subscription_store.hpp"
#include "wire/byte_buffer.hpp"

namespace psc::wire {

/// Snapshot format version; bump on ANY layout change to a store, broker,
/// or network body (they version together — a network body embeds the
/// other two). v3 appends the reliable-link config (NetworkConfig::link)
/// to the network-config block.
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Frame magics ("PSCB" / "PSCN" little-endian).
inline constexpr std::uint32_t kBrokerSnapshotMagic = 0x42435350U;
inline constexpr std::uint32_t kNetworkSnapshotMagic = 0x4e435350U;

/// Writes/reads a frame header; read throws DecodeError on a magic or
/// version mismatch.
void write_frame_header(ByteWriter& out, std::uint32_t magic);
void read_frame_header(ByteReader& in, std::uint32_t magic, const char* what);

void write_store_snapshot(ByteWriter& out,
                          const store::SubscriptionStore::Snapshot& snapshot);
[[nodiscard]] store::SubscriptionStore::Snapshot read_store_snapshot(
    ByteReader& in);

/// Broker BODY codec (no frame header); Broker::snapshot()/restore() add
/// the "PSCB" frame around it, the network body embeds it bare.
void write_broker_snapshot(ByteWriter& out,
                           const routing::Broker::Snapshot& snapshot);
[[nodiscard]] routing::Broker::Snapshot read_broker_snapshot(ByteReader& in);

/// NetworkConfig codec — the part of the network body that makes a
/// snapshot self-describing: a restored network rebuilds its brokers from
/// the serialized config instead of trusting the caller's.
void write_network_config(ByteWriter& out, const routing::NetworkConfig& config);
[[nodiscard]] routing::NetworkConfig read_network_config(ByteReader& in);

}  // namespace psc::wire
