// Wire codecs — versioned binary round trips for the repo's message-level
// vocabulary: Interval, Subscription, Publication, routing announcements,
// and churn-trace records. This is the wire representation a future
// cross-process/socket transport speaks; today it feeds the broker
// snapshot format (wire/snapshot.hpp) and the trace artifacts the nightly
// soaks archive.
//
// Conventions (see docs/ARCHITECTURE.md, "Wire format" for the full
// layout and compatibility rules):
//   * ids, counts, arities, and enum tags are varints; interval bounds and
//     publication values are IEEE-754 bit patterns (f64) — ±inf round-trips
//     bit-exactly, which the unbounded "everything" predicate needs;
//   * every read_* validates semantic invariants, not just framing: an
//     empty interval inside a subscription, an unknown enum tag, or a
//     count the buffer cannot hold all throw wire::DecodeError (never UB —
//     property-tested under ASan/UBSan);
//   * self-contained streams (traces, snapshots) carry a magic + format
//     version header; the element codecs below are headerless building
//     blocks and version with their enclosing stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "wire/byte_buffer.hpp"
#include "workload/churn_workload.hpp"

namespace psc::wire {

/// Format version of the headerless element codecs in this file. Bumped on
/// any layout change; embedded by the stream-level headers (trace,
/// snapshot) so readers can reject encodings they do not speak. v3 adds
/// the reliable-link frame header (LinkFrame) and the fault-schedule block
/// of churn traces; v4 adds the TCP transport's NetMessage envelope
/// (net/message.hpp) and the peer handshake that carries this version —
/// the v3 element codecs themselves are unchanged, so v4 peers interop
/// with v3 ones (see kMinPeerVersion) and v2/v3 traces still decode.
inline constexpr std::uint32_t kCodecVersion = 4;

/// Oldest trace version read_churn_trace still decodes.
inline constexpr std::uint32_t kMinTraceVersion = 2;

/// Oldest codec version a TCP peer may announce in its handshake hello and
/// still be accepted (net/message.hpp): v3 speaks the same Announcement /
/// LinkFrame element codecs, it just predates the envelope's extras.
inline constexpr std::uint32_t kMinPeerVersion = 3;

/// Magic prefix of a serialized churn trace ("PSCT" little-endian).
inline constexpr std::uint32_t kTraceMagic = 0x54435350U;

// --- core geometry ----------------------------------------------------

void write_interval(ByteWriter& out, const core::Interval& iv);
/// Accepts any lo <= hi (incl. ±inf); throws DecodeError on NaN bounds or
/// an empty (lo > hi) interval — no stored predicate is ever either.
[[nodiscard]] core::Interval read_interval(ByteReader& in);

void write_subscription(ByteWriter& out, const core::Subscription& sub);
[[nodiscard]] core::Subscription read_subscription(ByteReader& in);

void write_publication(ByteWriter& out, const core::Publication& pub);
[[nodiscard]] core::Publication read_publication(ByteReader& in);

// --- routing announcements --------------------------------------------

/// One link-level routing message — the unit a cross-process transport
/// would frame per hop. Mirrors what BrokerNetwork moves over its logical
/// links: subscription floods (with optional TTL expiry, carried so the
/// receiver arms its own timer), unsubscription floods, and publication
/// forwards (with the network-assigned cycle-suppression token).
struct Announcement {
  enum class Kind : std::uint8_t {
    kSubscribe = 1,    ///< sub (+ optional absolute expiry)
    kUnsubscribe = 2,  ///< id only
    kPublication = 3,  ///< pub + token
    kMembership = 4,   ///< membership op kind + peer operand
  };

  Kind kind = Kind::kSubscribe;
  std::uint32_t from = 0;  ///< sending broker (routing::BrokerId)
  core::Subscription sub;                 ///< kSubscribe payload
  std::optional<double> expiry;           ///< kSubscribe TTL expiry, absolute
  core::SubscriptionId id = 0;            ///< kUnsubscribe target
  core::Publication pub;                  ///< kPublication payload
  std::uint64_t token = 0;                ///< kPublication dedup token
  std::uint8_t member = 0;                ///< kMembership: MembershipOpKind
  std::uint32_t peer = 0;                 ///< kMembership second operand

  friend bool operator==(const Announcement& a, const Announcement& b) {
    if (a.kind != b.kind || a.from != b.from) return false;
    switch (a.kind) {
      case Kind::kSubscribe:
        return a.sub == b.sub && a.sub.id() == b.sub.id() && a.expiry == b.expiry;
      case Kind::kUnsubscribe:
        return a.id == b.id;
      case Kind::kPublication:
        return a.pub.id() == b.pub.id() && a.token == b.token &&
               std::equal(a.pub.values().begin(), a.pub.values().end(),
                          b.pub.values().begin(), b.pub.values().end());
      case Kind::kMembership:
        return a.member == b.member && a.peer == b.peer;
    }
    return false;
  }
};

void write_announcement(ByteWriter& out, const Announcement& msg);
[[nodiscard]] Announcement read_announcement(ByteReader& in);

// --- reliable-link frames (codec v3) -----------------------------------

/// The per-hop transport frame of the reliable link protocol
/// (routing/link_channel.hpp): a data frame carries one encoded
/// Announcement plus its per-directed-link sequence number; every frame —
/// data or pure ack — piggybacks the cumulative ack of the REVERSE
/// direction's stream (all sequence numbers below `ack` have been
/// received in order). Pure ack frames carry no payload and no meaningful
/// sequence number; they exist so a one-way traffic pattern still
/// acknowledges promptly.
struct LinkFrame {
  enum class Kind : std::uint8_t {
    kData = 1,  ///< seq + payload significant
    kAck = 2,   ///< ack-only; seq must be 0, payload empty
  };

  Kind kind = Kind::kData;
  std::uint64_t seq = 0;   ///< per-directed-link, monotone from 0
  std::uint64_t ack = 0;   ///< cumulative ack for the reverse stream
  std::vector<std::uint8_t> payload;  ///< encoded Announcement (kData)

  friend bool operator==(const LinkFrame& a, const LinkFrame& b) {
    return a.kind == b.kind && a.seq == b.seq && a.ack == b.ack &&
           a.payload == b.payload;
  }
};

void write_link_frame(ByteWriter& out, const LinkFrame& frame);
/// Validates framing AND the embedded payload: a kData payload must decode
/// as a complete Announcement with no trailing bytes. Corruption anywhere
/// throws DecodeError, never UB.
[[nodiscard]] LinkFrame read_link_frame(ByteReader& in);

// --- churn-trace records ----------------------------------------------

void write_churn_op(ByteWriter& out, const workload::ChurnOp& op);
[[nodiscard]] workload::ChurnOp read_churn_op(ByteReader& in);

/// Self-describing trace stream: magic, version, the generating config,
/// then the op records. Round-trips everything ChurnDriver consumes, so an
/// archived nightly trace replays bit-identically.
void write_churn_trace(ByteWriter& out, const workload::ChurnTrace& trace);
[[nodiscard]] workload::ChurnTrace read_churn_trace(ByteReader& in);

}  // namespace psc::wire
