#include "wire/snapshot.hpp"

#include <cmath>
#include <string>

#include "wire/codec.hpp"

namespace psc::wire {

using routing::Broker;
using routing::NetworkConfig;
using store::SubscriptionStore;

void write_frame_header(ByteWriter& out, std::uint32_t magic) {
  out.u32(magic);
  out.u32(kSnapshotVersion);
}

void read_frame_header(ByteReader& in, std::uint32_t magic, const char* what) {
  if (in.u32() != magic) {
    throw DecodeError(std::string("wire: not a ") + what + " snapshot (bad magic)");
  }
  const std::uint32_t version = in.u32();
  if (version != kSnapshotVersion) {
    throw DecodeError(std::string("wire: unsupported ") + what +
                      " snapshot version " + std::to_string(version));
  }
}

namespace {

void write_id_list(ByteWriter& out, const std::vector<core::SubscriptionId>& ids) {
  out.varint(ids.size());
  for (const core::SubscriptionId id : ids) out.varint(id);
}

std::vector<core::SubscriptionId> read_id_list(ByteReader& in) {
  const std::size_t count = in.count();
  std::vector<core::SubscriptionId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(in.varint());
  return ids;
}

}  // namespace

void write_store_snapshot(ByteWriter& out,
                          const SubscriptionStore::Snapshot& snapshot) {
  out.u8(snapshot.use_index ? 1 : 0);
  out.varint(snapshot.group_checks);
  for (const std::uint64_t word : snapshot.engine_rng_state) out.u64(word);
  out.varint(snapshot.actives.size());
  for (const core::Subscription& sub : snapshot.actives) {
    write_subscription(out, sub);
  }
  out.varint(snapshot.covered.size());
  for (const auto& record : snapshot.covered) {
    out.varint(record.id);
    write_subscription(out, record.sub);
    write_id_list(out, record.coverers);
  }
  out.varint(snapshot.children.size());
  for (const auto& record : snapshot.children) {
    out.varint(record.coverer);
    write_id_list(out, record.covered_ids);
  }
}

SubscriptionStore::Snapshot read_store_snapshot(ByteReader& in) {
  SubscriptionStore::Snapshot snapshot;
  const std::uint8_t use_index = in.u8();
  if (use_index > 1) throw DecodeError("wire: bad use_index flag");
  snapshot.use_index = use_index != 0;
  snapshot.group_checks = in.varint();
  for (std::uint64_t& word : snapshot.engine_rng_state) word = in.u64();
  const std::size_t active_count = in.count();
  snapshot.actives.reserve(active_count);
  for (std::size_t i = 0; i < active_count; ++i) {
    snapshot.actives.push_back(read_subscription(in));
  }
  const std::size_t covered_count = in.count();
  snapshot.covered.reserve(covered_count);
  for (std::size_t i = 0; i < covered_count; ++i) {
    SubscriptionStore::Snapshot::CoveredRecord record;
    record.id = in.varint();
    record.sub = read_subscription(in);
    record.coverers = read_id_list(in);
    snapshot.covered.push_back(std::move(record));
  }
  const std::size_t dag_count = in.count();
  snapshot.children.reserve(dag_count);
  for (std::size_t i = 0; i < dag_count; ++i) {
    SubscriptionStore::Snapshot::DagRecord record;
    record.coverer = in.varint();
    record.covered_ids = read_id_list(in);
    snapshot.children.push_back(std::move(record));
  }
  return snapshot;
}

void write_broker_snapshot(ByteWriter& out, const Broker::Snapshot& snapshot) {
  out.varint(snapshot.id);
  out.varint(snapshot.routes.size());
  for (const auto& record : snapshot.routes) {
    write_subscription(out, record.sub);
    out.u8(record.origin.local ? 1 : 0);
    out.varint(record.origin.neighbor);
  }
  out.varint(snapshot.links.size());
  for (const auto& [neighbor, store_snapshot] : snapshot.links) {
    out.varint(neighbor);
    write_store_snapshot(out, store_snapshot);
  }
  out.varint(snapshot.seen_tokens.size());
  for (const std::uint64_t token : snapshot.seen_tokens) out.varint(token);
}

Broker::Snapshot read_broker_snapshot(ByteReader& in) {
  Broker::Snapshot snapshot;
  snapshot.id = static_cast<routing::BrokerId>(in.varint());
  const std::size_t route_count = in.count();
  snapshot.routes.reserve(route_count);
  for (std::size_t i = 0; i < route_count; ++i) {
    Broker::Snapshot::RouteRecord record;
    record.sub = read_subscription(in);
    const std::uint8_t local = in.u8();
    if (local > 1) throw DecodeError("wire: bad origin flag");
    record.origin.local = local != 0;
    record.origin.neighbor = static_cast<routing::BrokerId>(in.varint());
    snapshot.routes.push_back(std::move(record));
  }
  const std::size_t link_count = in.count();
  snapshot.links.reserve(link_count);
  for (std::size_t i = 0; i < link_count; ++i) {
    const auto neighbor = static_cast<routing::BrokerId>(in.varint());
    snapshot.links.emplace_back(neighbor, read_store_snapshot(in));
  }
  const std::size_t token_count = in.count();
  snapshot.seen_tokens.reserve(token_count);
  for (std::size_t i = 0; i < token_count; ++i) {
    snapshot.seen_tokens.push_back(in.varint());
  }
  return snapshot;
}

void write_network_config(ByteWriter& out, const NetworkConfig& config) {
  // StoreConfig.
  out.u8(static_cast<std::uint8_t>(config.store.policy));
  out.u8(config.store.demote_covered_actives ? 1 : 0);
  out.u8(config.store.hierarchical_match ? 1 : 0);
  out.u8(config.store.use_index ? 1 : 0);
  // EngineConfig.
  out.f64(config.store.engine.delta);
  out.varint(config.store.engine.max_iterations);
  out.u8(config.store.engine.use_fast_decisions ? 1 : 0);
  out.u8(config.store.engine.use_mcs ? 1 : 0);
  out.f64(config.store.engine.grid_spacing);
  out.u8(config.store.engine.prefilter_intersecting ? 1 : 0);
  // IndexConfig.
  out.f64(config.store.index.domain_lo);
  out.f64(config.store.index.domain_hi);
  out.varint(config.store.index.bucket_count);
  out.u8(config.store.index.amortize_mutations ? 1 : 0);
  out.varint(config.store.index.compaction_min);
  out.f64(config.store.index.compaction_slack);
  // Network-level knobs.
  out.f64(config.link_latency);
  out.u64(config.seed);
  out.varint(config.match_shards);
  // v3: reliable-link protocol + fault rates (LinkConfig).
  out.u8(config.link.enabled ? 1 : 0);
  out.f64(config.link.rto);
  out.f64(config.link.backoff);
  out.f64(config.link.rto_max);
  out.varint(config.link.max_retries);
  out.varint(config.link.window);
  out.f64(config.link.ack_delay);
  out.f64(config.link.faults.drop_probability);
  out.f64(config.link.faults.dup_probability);
  out.f64(config.link.faults.reorder_probability);
  out.f64(config.link.faults.delay_jitter);
}

NetworkConfig read_network_config(ByteReader& in) {
  NetworkConfig config;
  const std::uint8_t policy = in.u8();
  if (policy > static_cast<std::uint8_t>(store::CoveragePolicy::kExact)) {
    throw DecodeError("wire: unknown coverage policy " + std::to_string(policy));
  }
  const auto flag = [&in](const char* what) {
    const std::uint8_t value = in.u8();
    if (value > 1) throw DecodeError(std::string("wire: bad flag ") + what);
    return value != 0;
  };
  config.store.policy = static_cast<store::CoveragePolicy>(policy);
  config.store.demote_covered_actives = flag("demote_covered_actives");
  config.store.hierarchical_match = flag("hierarchical_match");
  config.store.use_index = flag("use_index");
  config.store.engine.delta = in.f64();
  config.store.engine.max_iterations = in.varint();
  config.store.engine.use_fast_decisions = flag("use_fast_decisions");
  config.store.engine.use_mcs = flag("use_mcs");
  config.store.engine.grid_spacing = in.f64();
  config.store.engine.prefilter_intersecting = flag("prefilter_intersecting");
  config.store.index.domain_lo = in.f64();
  config.store.index.domain_hi = in.f64();
  config.store.index.bucket_count = static_cast<std::size_t>(in.varint());
  config.store.index.amortize_mutations = flag("amortize_mutations");
  config.store.index.compaction_min = static_cast<std::size_t>(in.varint());
  config.store.index.compaction_slack = in.f64();
  config.link_latency = in.f64();
  if (std::isnan(config.link_latency)) {
    throw DecodeError("wire: NaN link latency");
  }
  config.seed = in.u64();
  config.match_shards = static_cast<std::size_t>(in.varint());
  config.link.enabled = flag("link_enabled");
  const auto nonneg = [&in](const char* what) {
    const double value = in.f64();
    if (std::isnan(value) || value < 0) {
      throw DecodeError(std::string("wire: bad link knob ") + what);
    }
    return value;
  };
  const auto rate = [&in](const char* what) {
    const double value = in.f64();
    if (std::isnan(value) || value < 0 || value > 1) {
      throw DecodeError(std::string("wire: bad fault rate ") + what);
    }
    return value;
  };
  config.link.rto = nonneg("rto");
  config.link.backoff = nonneg("backoff");
  if (config.link.backoff < 1.0) {
    throw DecodeError("wire: link backoff below 1");
  }
  config.link.rto_max = nonneg("rto_max");
  config.link.max_retries = static_cast<std::size_t>(in.varint());
  config.link.window = static_cast<std::size_t>(in.varint());
  if (config.link.window == 0) throw DecodeError("wire: zero link window");
  config.link.ack_delay = nonneg("ack_delay");
  config.link.faults.drop_probability = rate("drop");
  config.link.faults.dup_probability = rate("dup");
  config.link.faults.reorder_probability = rate("reorder");
  config.link.faults.delay_jitter = nonneg("delay_jitter");
  return config;
}

}  // namespace psc::wire
