// ByteWriter / ByteReader — the allocation-conscious binary buffer layer
// every wire codec in src/wire/ builds on.
//
// Encoding primitives (all little-endian, platform-independent):
//   * fixed-width u8 / u32 / u64 for fields whose size never varies
//     (format versions, RNG state words, IEEE doubles);
//   * LEB128 varints for counts, ids, and enum tags — the dominant field
//     classes in subscription/publication traffic, where small values are
//     overwhelmingly common (a 64-bit id below 128 costs one byte);
//   * f64 as the IEEE-754 bit pattern in a fixed u64 (NaN/inf preserved
//     bit-exactly, which the Interval codec relies on for the unbounded
//     [-inf, +inf] "everything" predicate).
//
// Error model: ByteReader NEVER reads past the span it was handed. Every
// truncated, overlong, or otherwise malformed read throws wire::DecodeError
// (derived from std::runtime_error) and leaves the reader positioned where
// the failure was detected — no partial object escapes, no UB on hostile
// input (property-tested under ASan/UBSan in tests/wire_test.cpp).
//
// Allocation model: ByteWriter appends to one caller-visible
// std::vector<std::uint8_t>; reserve() up front and a steady-state encode
// performs no further allocations. ByteReader is a non-owning view.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace psc::wire {

/// Thrown on any malformed/truncated decode. Catching this (and only this)
/// is the supported way to reject a corrupt buffer.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder over a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void reserve(std::size_t bytes) { bytes_.reserve(bytes_.size() + bytes); }

  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  /// LEB128: 7 value bits per byte, high bit = continuation. At most 10
  /// bytes for a 64-bit value; values < 128 cost one byte.
  void varint(std::uint64_t value) {
    while (value >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(value));
  }

  /// IEEE-754 bit pattern as fixed u64 (bit-exact round trip incl. ±inf).
  void f64(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed raw bytes (varint count + payload).
  void bytes(std::span<const std::uint8_t> payload) {
    varint(payload.size());
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  }

  /// Length-prefixed UTF-8 string.
  void string(std::string_view text) {
    varint(text.size());
    bytes_.insert(bytes_.end(), text.begin(), text.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(bytes_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder over a non-owning byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  [[nodiscard]] std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
    }
    return value;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
    }
    return value;
  }

  /// Rejects both truncation and non-canonical over-long encodings (more
  /// than 10 bytes, or bits beyond the 64th) — a fuzzer favourite.
  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1, "varint");
      const std::uint8_t byte = data_[pos_++];
      if (shift == 63 && (byte & 0xfe) != 0) {
        throw DecodeError("wire: varint overflows 64 bits");
      }
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
    }
    throw DecodeError("wire: varint longer than 10 bytes");
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  /// Length-prefixed raw bytes; the returned span aliases the input.
  [[nodiscard]] std::span<const std::uint8_t> bytes() {
    const std::uint64_t count = varint();
    need(count, "bytes payload");
    const auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  [[nodiscard]] std::string string() {
    const auto view = bytes();
    return std::string(reinterpret_cast<const char*>(view.data()), view.size());
  }

  /// Decodes a count that prefixes `per_element` (>= 1) bytes per element
  /// and rejects counts the remaining buffer cannot possibly satisfy —
  /// the guard that keeps a corrupted length byte from turning into a
  /// multi-gigabyte reserve() before the per-element reads would fail.
  [[nodiscard]] std::size_t count(std::size_t per_element = 1) {
    const std::uint64_t n = varint();
    if (per_element == 0) per_element = 1;
    if (n > remaining() / per_element) {
      throw DecodeError("wire: element count exceeds remaining buffer");
    }
    return static_cast<std::size_t>(n);
  }

  /// Throws unless the next `bytes` bytes exist.
  void need(std::size_t bytes, const char* what) const {
    if (bytes > remaining()) {
      throw DecodeError(std::string("wire: truncated ") + what + " at offset " +
                        std::to_string(pos_));
    }
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace psc::wire
