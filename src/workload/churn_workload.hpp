// Churn workload — an open, deterministic client-op trace for soaking a
// broker overlay: Poisson subscription arrivals with a TTL / explicit-
// unsubscribe mix, exponential lifetimes, and Zipf-skewed publication
// hotspots (popular regions of the attribute space attract both
// subscriptions and publications, so coverage pruning, TTL expiry, and
// promotion-on-erase all fire continuously).
//
// A trace is a plain vector of client-visible ops, so the SAME trace can
// be replayed against a BrokerNetwork (sim::ChurnDriver) and against the
// routing::FlatOracle for differential checking.
//
// Time discipline (the determinism contract, see docs/ARCHITECTURE.md):
// every op lands on its own slot boundary k * slot, and every TTL is a
// whole number of slots plus HALF a slot. Expiries therefore fire at
// mid-slot instants, strictly after any publish/subscribe cascade started
// at the preceding boundary has quiesced (cascades span at most
// (brokers + 1) * link_latency, and generation validates
// slot / 2 > that bound). This keeps the network's cascade-time clock
// drift invisible to the flat oracle, whose clock only moves on
// advance_time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "routing/broker.hpp"
#include "routing/membership.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_fault_model.hpp"

namespace psc::workload {

/// One client-visible operation of a churn trace.
enum class ChurnOpKind : std::uint8_t {
  kSubscribe,     ///< permanent (or explicitly unsubscribed later)
  kSubscribeTtl,  ///< expires ttl seconds after issue, message-free
  kUnsubscribe,   ///< explicit removal of an earlier kSubscribe
  kPublish,       ///< point publication
  kAdvance,       ///< pure time advance (flushes due expiries)
  kMembership,    ///< overlay mutation (join/leave/crash/replace/fail/heal)
};

struct ChurnOp {
  ChurnOpKind kind = ChurnOpKind::kAdvance;
  sim::SimTime time = 0.0;        ///< absolute, slot-aligned issue time
  routing::BrokerId broker = 0;   ///< issuing client's home broker
  core::Subscription sub;         ///< kSubscribe / kSubscribeTtl payload
  sim::SimTime ttl = 0.0;         ///< kSubscribeTtl only
  core::SubscriptionId id = 0;    ///< kUnsubscribe target
  core::Publication pub;          ///< kPublish payload
  // kMembership payload. `broker`/`peer` operands by kind: kJoin attaches
  // the new broker `peer` (predicted dense id, asserted at replay) to
  // `broker`; kLeave/kCrash/kReplace target `broker`; kFailLink/kHealLink
  // name the link (`broker`, `peer`).
  std::uint8_t member = 0;        ///< routing::MembershipOpKind value
  routing::BrokerId peer = 0;     ///< second operand, see above
};

/// Knobs of the churn model. Rates are per simulated second; the defaults
/// give a sustained mixed workload on the standard topology family (see
/// docs/TUNING.md for the measured effect of each knob).
struct ChurnConfig {
  // --- attribute space ------------------------------------------------
  std::size_t attribute_count = 2;
  double domain_lo = 0.0;
  double domain_hi = 1000.0;

  // --- workload shape -------------------------------------------------
  double subscription_rate = 2.0;  ///< Poisson arrivals of new subscriptions
  double publication_rate = 5.0;   ///< Poisson arrivals of publications
  double ttl_fraction = 0.5;       ///< share of subs removed by TTL expiry
  double immortal_fraction = 0.1;  ///< share of subs that never leave
  double mean_lifetime = 8.0;      ///< exponential lifetime mean, seconds

  // --- hotspot model (Zipf-skewed popularity) -------------------------
  std::size_t hotspot_count = 16;        ///< distinct popular regions
  double zipf_skew = 0.9;                ///< hotspot popularity exponent
  double hotspot_radius_fraction = 0.04; ///< normal jitter stddev / domain
  double width_fraction_lo = 0.02;       ///< sub box width bounds / domain
  double width_fraction_hi = 0.25;

  // --- membership churn (all-zero rates = static membership) ----------
  // Poisson event streams over the overlay itself, interleaved with the
  // client churn above. Crashes schedule a replacement ~Exp(replace_mean)
  // later; partitions schedule a heal ~Exp(partition_mean) later. A heal
  // picks uniformly among ALL currently healable down links — so on
  // ring/mesh universes a partition can rotate which bridge is up rather
  // than restoring the one that failed.
  struct MembershipConfig {
    double join_rate = 0.0;       ///< new-broker attachments per second
    double leave_rate = 0.0;      ///< graceful departures per second
    double crash_rate = 0.0;      ///< crash-stop failures per second
    double partition_rate = 0.0;  ///< link failures per second
    double partition_mean = 4.0;  ///< mean seconds a partition stays open
    double replace_mean = 3.0;    ///< mean seconds from crash to replacement
    std::size_t min_brokers = 4;  ///< leave/crash keep at least this many alive
    std::size_t max_brokers = 0;  ///< join cap; 0 = twice the initial count
    [[nodiscard]] bool any() const noexcept {
      return join_rate > 0 || leave_rate > 0 || crash_rate > 0 ||
             partition_rate > 0;
    }
  };
  MembershipConfig membership;

  // --- link faults (all-zero = perfect wire) --------------------------
  // Probabilistic drop/dup/reorder/jitter rates applied to every directed
  // link, plus scripted burst-loss windows the generator lays into the
  // trace (LinkBurst records). Traces with faults are meant to replay
  // against a network with NetworkConfig::link.enabled — the reliable
  // link protocol makes delivery fault-invariant, which is exactly what
  // the differential gates check. cascade_hop_bound is the worst-case
  // per-hop delivery/escalation time of that protocol
  // (routing::LinkConfig::worst_hop_delay); the slot validation uses it
  // instead of the raw latency so retransmit chains still quiesce inside
  // half a slot.
  struct FaultConfig {
    sim::LinkFaultConfig link;       ///< iid rates, every direction
    std::size_t burst_count = 0;     ///< scripted full-loss windows to emit
    double burst_length = 0.0;       ///< seconds per window
    double cascade_hop_bound = 0.0;  ///< worst per-hop time; 0 = link_latency
    [[nodiscard]] bool any() const noexcept {
      return link.any() || burst_count > 0;
    }
  };
  FaultConfig faults;

  // --- time discipline ------------------------------------------------
  double duration = 60.0;      ///< simulated seconds of churn
  double slot = 0.1;           ///< op-time quantum; one op per slot
  double link_latency = 0.001; ///< must match NetworkConfig::link_latency
  double epoch_length = 5.0;   ///< driver snapshot period (slot multiple)
};

/// One scripted burst-loss window: both directions of the undirected link
/// (a, b) lose every transmission attempt during [start, end). A window
/// longer than the retransmit-backoff chain forces a deterministic
/// retry-cap escalation into fail_link.
struct LinkBurst {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  routing::BrokerId a = 0;
  routing::BrokerId b = 0;
};

/// A generated trace: time-ordered ops plus the config that shaped it.
/// Membership traces additionally embed the universe they were generated
/// against, making a serialized trace self-contained for replay.
struct ChurnTrace {
  ChurnConfig config;
  std::size_t broker_count = 0;
  std::uint64_t seed = 0;
  std::vector<ChurnOp> ops;
  std::size_t publish_count = 0;
  std::size_t subscribe_count = 0;  ///< kSubscribe + kSubscribeTtl ops
  std::size_t membership_count = 0;
  bool has_membership = false;
  routing::MembershipUniverse universe;
  /// Scripted burst-loss windows (config.faults.burst_count of them),
  /// time-ordered; empty for perfect-link traces.
  std::vector<LinkBurst> bursts;
};

/// Generates a deterministic trace for an overlay of `broker_count`
/// brokers. Throws std::invalid_argument on nonsensical configs, including
/// a slot too small for the overlay's worst-case cascade
/// (slot / 2 <= (broker_count + 1) * link_latency), which would break the
/// differential time contract above. Membership rates require the
/// universe overload (the generator must know the link graph) and throw
/// here.
[[nodiscard]] ChurnTrace generate_churn_trace(const ChurnConfig& config,
                                              std::size_t broker_count,
                                              std::uint64_t seed);

/// Membership-aware overload: generates against a concrete universe,
/// running its own LinkState through the exact event sequence it emits so
/// every op is feasible by construction (the same LinkState policy the
/// network and oracle replay, so all three stay in lockstep). The cascade
/// bound is validated against the join cap, not the initial broker count.
[[nodiscard]] ChurnTrace generate_churn_trace(
    const ChurnConfig& config, const routing::MembershipUniverse& universe,
    std::uint64_t seed);

}  // namespace psc::workload
