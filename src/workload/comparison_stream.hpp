// Comparison-scenario subscription stream (paper, Section 6.4).
//
// With no public real-world subscription trace, the paper simulates a
// realistic population with power-law popularity:
//   * attribute popularity: Zipf, skew 2.0 — each subscription constrains a
//     subset of popular attributes, the rest stay unconstrained;
//   * range centers: Pareto, skew 1.0 — interests cluster;
//   * range widths: normal.
// This module generates that stream; the Fig. 13/14 harness feeds it into
// pairwise- vs group-coverage set maintenance.
#pragma once

#include <cstddef>
#include <vector>

#include "core/subscription.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace psc::workload {

struct ComparisonConfig {
  std::size_t attribute_count = 10;    ///< m (schema width)
  /// Number of attributes each subscription actually constrains, drawn
  /// uniformly in [min_constrained, max_constrained] then picked by Zipf
  /// popularity. Unconstrained attributes get the full domain.
  std::size_t min_constrained = 1;
  std::size_t max_constrained = 5;
  double zipf_skew = 2.0;              ///< attribute popularity
  double pareto_shape = 1.0;           ///< range-center clustering
  double width_mean_fraction = 0.35;   ///< mean range width / domain width
  double width_stddev_fraction = 0.20;
  /// Scale mapping the Pareto tail onto the domain: the median center sits
  /// at (this value) x domain width above domain_lo. Smaller = tighter
  /// interest clustering = more subsumption.
  double center_cluster_scale = 0.08;
  core::Value domain_lo = 0.0;
  core::Value domain_hi = 1000.0;
};

/// Deterministic generator; call next() repeatedly for the stream.
class ComparisonStream {
 public:
  ComparisonStream(const ComparisonConfig& config, std::uint64_t seed);

  [[nodiscard]] core::Subscription next();

  /// Generates `n` subscriptions at once.
  [[nodiscard]] std::vector<core::Subscription> take(std::size_t n);

  [[nodiscard]] const ComparisonConfig& config() const noexcept { return config_; }

 private:
  ComparisonConfig config_;
  util::Rng rng_;
  util::ZipfSampler attribute_popularity_;
  util::ParetoSampler center_sampler_;
  util::NormalSampler width_sampler_;
  std::uint64_t next_id_ = 1;

  [[nodiscard]] core::Interval sample_range();
};

}  // namespace psc::workload
