// Subscription-generation scenarios of the paper's Section 6.
//
// Every generator produces one *instance*: a tested subscription s plus a
// set S of k existing subscriptions over m attributes, with the structural
// guarantees the paper states for the experiments:
//   * every s_i is satisfiable,
//   * every s_i intersects s,
//   * all s_i are pairwise intersecting on at least one attribute,
//   * no pairwise subsumption between s and any single s_i (for the
//     "difficult" scenarios 1.b / 2.b / 2.c).
//
// Scenario map (paper numbering):
//   1.a pairwise covering     — s is covered by at least one single s_i
//   1.b redundant covering    — first 20 % of S covers s jointly; rest
//                               overlaps s but is redundant
//   2.a no intersection       — no s_i intersects s
//   2.b non-cover             — union misses a forced gap slab of s
//   2.c extreme non-cover     — like 2.b but the gap is a thin slice
//                               (parametric width, k = 50, m = 5 defaults)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/subscription.hpp"
#include "util/rng.hpp"

namespace psc::workload {

/// One generated experiment instance.
struct Instance {
  core::Subscription tested;                 ///< the new subscription s
  std::vector<core::Subscription> existing;  ///< the set S
  bool expected_covered = false;             ///< ground truth by construction
};

/// Common generation parameters.
struct ScenarioConfig {
  std::size_t attribute_count = 10;   ///< m
  std::size_t set_size = 100;         ///< k
  /// Attribute domain; subscriptions are boxes inside [domain_lo, domain_hi].
  core::Value domain_lo = 0.0;
  core::Value domain_hi = 1000.0;
  /// Width of s per attribute, as a fraction of the domain.
  double tested_width_fraction = 0.4;
};

/// 1.a — some single s_i covers s entirely; remaining subscriptions overlap
/// s partially.
[[nodiscard]] Instance make_pairwise_covering(const ScenarioConfig& config,
                                              util::Rng& rng);

/// 1.b — s is covered by the union of the first ceil(20 % k) subscriptions
/// (slab partition of s along a random attribute, each slab extended beyond
/// s), while the remaining 80 % overlap s partially and are redundant.
/// No single s_i covers s.
[[nodiscard]] Instance make_redundant_covering(const ScenarioConfig& config,
                                               util::Rng& rng);

/// 2.a — no s_i intersects s.
[[nodiscard]] Instance make_no_intersection(const ScenarioConfig& config,
                                            util::Rng& rng);

/// 2.b — the union leaves a forced gap slab of s uncovered on attribute 0;
/// all s_i intersect s and are pairwise intersecting; no pairwise
/// subsumption with s.
[[nodiscard]] Instance make_non_cover(const ScenarioConfig& config, util::Rng& rng);

/// 2.c — extreme non-cover: s is covered everywhere except a thin slice of
/// relative width `gap_fraction` (e.g. 0.005 = 0.5 %) on one attribute.
[[nodiscard]] Instance make_extreme_non_cover(const ScenarioConfig& config,
                                              double gap_fraction, util::Rng& rng);

/// Helper: a random box within the domain with per-attribute widths in
/// [min_fraction, max_fraction] of the domain width.
[[nodiscard]] core::Subscription random_box(const ScenarioConfig& config,
                                            double min_fraction,
                                            double max_fraction, util::Rng& rng);

/// Helper: a random box that overlaps `target` on every attribute without
/// covering it (used for redundant / distractor subscriptions).
[[nodiscard]] core::Subscription random_overlapping_box(
    const ScenarioConfig& config, const core::Subscription& target,
    util::Rng& rng);

}  // namespace psc::workload
