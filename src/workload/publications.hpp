// Publication generators: uniform points over the domain, points targeted
// inside a given subscription (guaranteed match), and near-miss points just
// outside one attribute range (matcher stress tests).
#pragma once

#include <cstddef>

#include "core/publication.hpp"
#include "core/subscription.hpp"
#include "util/rng.hpp"

namespace psc::workload {

/// Uniform point over the box [lo, hi]^m.
[[nodiscard]] core::Publication uniform_publication(std::size_t attribute_count,
                                                    core::Value lo, core::Value hi,
                                                    util::Rng& rng);

/// Uniform point inside `sub` (requires finite ranges).
[[nodiscard]] core::Publication publication_inside(const core::Subscription& sub,
                                                   util::Rng& rng);

/// Point inside `sub` on all attributes except one, where it lands just
/// outside the range (offset = fraction of the range width, default 1 %).
/// Requires at least one attribute and finite ranges.
[[nodiscard]] core::Publication publication_near_miss(const core::Subscription& sub,
                                                      util::Rng& rng,
                                                      double offset_fraction = 0.01);

}  // namespace psc::workload
