#include "workload/comparison_stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psc::workload {

using core::Interval;
using core::Subscription;
using core::Value;

ComparisonStream::ComparisonStream(const ComparisonConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      rng_(seed),
      attribute_popularity_(std::max<std::size_t>(config.attribute_count, 1),
                            config.zipf_skew),
      center_sampler_(1.0, config.pareto_shape),
      width_sampler_(config.width_mean_fraction, config.width_stddev_fraction) {
  if (config.attribute_count == 0) {
    throw std::invalid_argument("ComparisonConfig: attribute_count must be > 0");
  }
  if (config.min_constrained == 0 ||
      config.min_constrained > config.max_constrained ||
      config.max_constrained > config.attribute_count) {
    throw std::invalid_argument("ComparisonConfig: bad constrained-count bounds");
  }
  if (!(config.domain_lo < config.domain_hi)) {
    throw std::invalid_argument("ComparisonConfig: domain must be non-empty");
  }
}

Interval ComparisonStream::sample_range() {
  const Value domain_width = config_.domain_hi - config_.domain_lo;
  // Pareto sample >= 1; (X - 1) has median 1, so scaling by 0.2 puts the
  // median center at 20 % of the domain — interests cluster near the low
  // end ("similar but not equal interests"), with a heavy tail folded back
  // into the domain so the whole space stays reachable.
  const double pareto = center_sampler_.sample(rng_);
  double unit = (pareto - 1.0) * config_.center_cluster_scale;
  if (unit > 1.0) unit = std::fmod(unit, 1.0);
  const Value center = config_.domain_lo + unit * domain_width;
  const Value width = std::clamp(width_sampler_.sample(rng_), 0.01, 1.0) *
                      domain_width;
  Value lo = center - width / 2;
  Value hi = center + width / 2;
  lo = std::max(lo, config_.domain_lo);
  hi = std::min(hi, config_.domain_hi);
  if (!(lo < hi)) {  // degenerate clamp at the domain edge: widen minimally
    lo = std::max(config_.domain_lo, hi - 0.01 * domain_width);
    hi = std::min(config_.domain_hi, lo + 0.01 * domain_width);
  }
  return {lo, hi};
}

Subscription ComparisonStream::next() {
  const std::size_t constrained_count = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(config_.min_constrained),
                       static_cast<std::int64_t>(config_.max_constrained)));

  // Pick distinct attributes by Zipf popularity (rejection on duplicates;
  // bounded because constrained_count <= attribute_count).
  std::vector<char> chosen(config_.attribute_count, 0);
  std::size_t picked = 0;
  while (picked < constrained_count) {
    const std::size_t attr = attribute_popularity_.sample(rng_);
    if (!chosen[attr]) {
      chosen[attr] = 1;
      ++picked;
    }
  }

  std::vector<Interval> ranges(config_.attribute_count);
  for (std::size_t j = 0; j < config_.attribute_count; ++j) {
    // Unconstrained attributes span the whole (finite) domain rather than
    // (-inf, inf): the engine samples points uniformly inside the tested
    // subscription, which requires finite ranges, and the domain *is* the
    // attribute's value universe in this workload.
    ranges[j] = chosen[j] ? sample_range()
                          : Interval{config_.domain_lo, config_.domain_hi};
  }
  Subscription sub(std::move(ranges));
  sub.set_id(next_id_++);
  return sub;
}

std::vector<Subscription> ComparisonStream::take(std::size_t n) {
  std::vector<Subscription> subs;
  subs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) subs.push_back(next());
  return subs;
}

}  // namespace psc::workload
