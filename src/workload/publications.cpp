#include "workload/publications.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace psc::workload {

using core::Publication;
using core::Subscription;
using core::Value;

Publication uniform_publication(std::size_t attribute_count, Value lo, Value hi,
                                util::Rng& rng) {
  if (!(lo <= hi)) throw std::invalid_argument("uniform_publication: bad domain");
  std::vector<Value> values(attribute_count);
  for (auto& v : values) v = rng.uniform(lo, hi);
  return Publication(std::move(values));
}

Publication publication_inside(const Subscription& sub, util::Rng& rng) {
  std::vector<Value> values(sub.attribute_count());
  for (std::size_t j = 0; j < sub.attribute_count(); ++j) {
    const auto& range = sub.range(j);
    if (!std::isfinite(range.lo) || !std::isfinite(range.hi)) {
      throw std::invalid_argument("publication_inside: unbounded range");
    }
    values[j] = rng.uniform(range.lo, range.hi);
  }
  return Publication(std::move(values));
}

Publication publication_near_miss(const Subscription& sub, util::Rng& rng,
                                  double offset_fraction) {
  if (sub.attribute_count() == 0) {
    throw std::invalid_argument("publication_near_miss: no attributes");
  }
  Publication pub = publication_inside(sub, rng);
  std::vector<Value> values(pub.values().begin(), pub.values().end());
  const std::size_t miss_attr = rng.next_below(sub.attribute_count());
  const auto& range = sub.range(miss_attr);
  const Value offset =
      (range.width() > 0.0 ? range.width() : Value{1}) * offset_fraction;
  values[miss_attr] =
      rng.bernoulli(0.5) ? range.lo - offset : range.hi + offset;
  return Publication(std::move(values), pub.id());
}

}  // namespace psc::workload
