#include "workload/churn_workload.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace psc::workload {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using routing::BrokerId;

namespace {

/// Exponential variate with the given mean (inverse-CDF, one rng call).
double sample_exponential(util::Rng& rng, double mean) {
  const double u = 1.0 - rng.next_double();  // (0, 1], avoids log(0)
  return -mean * std::log(u);
}

void validate(const ChurnConfig& c, std::size_t broker_count) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("generate_churn_trace: ") + what);
  };
  if (broker_count == 0) fail("broker_count must be > 0");
  if (c.attribute_count == 0) fail("attribute_count must be > 0");
  if (!(c.domain_hi > c.domain_lo)) fail("domain must be non-empty");
  if (c.subscription_rate < 0 || c.publication_rate < 0) fail("negative rate");
  if (c.subscription_rate + c.publication_rate <= 0) fail("all rates zero");
  if (c.ttl_fraction < 0 || c.ttl_fraction > 1) fail("ttl_fraction outside [0,1]");
  if (c.immortal_fraction < 0 || c.immortal_fraction > 1) {
    fail("immortal_fraction outside [0,1]");
  }
  if (!(c.mean_lifetime > 0)) fail("mean_lifetime must be > 0");
  if (c.hotspot_count == 0) fail("hotspot_count must be > 0");
  if (c.zipf_skew < 0) fail("zipf_skew must be >= 0");
  if (!(c.hotspot_radius_fraction >= 0)) fail("hotspot_radius_fraction < 0");
  if (!(c.width_fraction_lo > 0) || c.width_fraction_hi < c.width_fraction_lo ||
      c.width_fraction_hi > 1.0) {
    fail("width fractions need 0 < lo <= hi <= 1");
  }
  if (!(c.slot > 0) || !(c.duration >= c.slot)) fail("need 0 < slot <= duration");
  if (!(c.link_latency > 0)) fail("link_latency must be > 0");
  if (!(c.epoch_length > 0)) fail("epoch_length must be > 0");
  // Epoch boundaries must land on slot boundaries, or a driver snapshot
  // could fall on a mid-slot expiry instant and observe mid-cascade state.
  const double epoch_slots = c.epoch_length / c.slot;
  if (std::abs(epoch_slots - std::round(epoch_slots)) > 1e-9) {
    fail("epoch_length must be a whole number of slots");
  }
  // The differential time contract: expiries sit half a slot past a
  // boundary, which must clear the worst-case cascade window.
  if (c.slot / 2 <=
      static_cast<double>(broker_count + 1) * c.link_latency) {
    fail("slot too small: slot/2 must exceed (brokers + 1) * link_latency");
  }
}

/// Pending proto-event: payloads are sampled at pop time so the RNG stream
/// is consumed in one deterministic (time, insertion) order.
struct Proto {
  double t = 0.0;
  ChurnOpKind kind = ChurnOpKind::kAdvance;
  std::uint64_t seq = 0;           ///< FIFO tie-break
  SubscriptionId unsub_id = 0;     ///< kUnsubscribe payload
  BrokerId unsub_home = 0;
};

struct ProtoLater {
  bool operator()(const Proto& a, const Proto& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

}  // namespace

ChurnTrace generate_churn_trace(const ChurnConfig& config,
                                std::size_t broker_count, std::uint64_t seed) {
  validate(config, broker_count);

  ChurnTrace trace;
  trace.config = config;
  trace.broker_count = broker_count;
  trace.seed = seed;

  util::Rng rng(seed);
  const double domain_width = config.domain_hi - config.domain_lo;
  const util::ZipfSampler hotspot_rank(config.hotspot_count, config.zipf_skew);
  const util::NormalSampler jitter(0.0,
                                   config.hotspot_radius_fraction * domain_width);

  // Hotspot centers: the popular regions both sides of the workload share.
  std::vector<std::vector<double>> hotspots(config.hotspot_count);
  for (auto& center : hotspots) {
    center.reserve(config.attribute_count);
    for (std::size_t a = 0; a < config.attribute_count; ++a) {
      center.push_back(rng.uniform(config.domain_lo, config.domain_hi));
    }
  }

  // Poisson arrival processes (exponential inter-arrival times).
  std::priority_queue<Proto, std::vector<Proto>, ProtoLater> pending;
  std::uint64_t seq = 0;
  if (config.subscription_rate > 0) {
    for (double t = sample_exponential(rng, 1.0 / config.subscription_rate);
         t < config.duration;
         t += sample_exponential(rng, 1.0 / config.subscription_rate)) {
      pending.push(Proto{t, ChurnOpKind::kSubscribe, seq++, 0, 0});
    }
  }
  if (config.publication_rate > 0) {
    for (double t = sample_exponential(rng, 1.0 / config.publication_rate);
         t < config.duration;
         t += sample_exponential(rng, 1.0 / config.publication_rate)) {
      pending.push(Proto{t, ChurnOpKind::kPublish, seq++, 0, 0});
    }
  }

  // Slot assignment: ops are serialized one-per-slot in event order, so
  // every op owns a quiet boundary and replay is collision-free.
  const auto slot_of = [&](double t) {
    return static_cast<std::uint64_t>(std::ceil(t / config.slot));
  };
  std::uint64_t last_slot = 0;  // slot 0 is reserved: time 0 issues nothing
  SubscriptionId next_id = 1;

  while (!pending.empty()) {
    Proto proto = pending.top();
    pending.pop();
    if (proto.t >= config.duration) continue;
    const std::uint64_t op_slot = std::max(slot_of(proto.t), last_slot + 1);
    const double op_time = static_cast<double>(op_slot) * config.slot;
    last_slot = op_slot;

    ChurnOp op;
    op.time = op_time;
    switch (proto.kind) {
      case ChurnOpKind::kSubscribe: {
        // Box around a Zipf-popular hotspot: popular regions accumulate
        // overlapping subscriptions, which is what coverage pruning eats.
        const auto& center = hotspots[hotspot_rank.sample(rng)];
        std::vector<Interval> ranges;
        ranges.reserve(config.attribute_count);
        for (std::size_t a = 0; a < config.attribute_count; ++a) {
          const double mid = std::clamp(center[a] + jitter.sample(rng),
                                        config.domain_lo, config.domain_hi);
          const double width = rng.uniform(config.width_fraction_lo,
                                           config.width_fraction_hi) *
                               domain_width;
          ranges.emplace_back(
              std::max(config.domain_lo, mid - width / 2),
              std::min(config.domain_hi, mid + width / 2));
        }
        op.broker = static_cast<BrokerId>(rng.next_below(broker_count));
        op.sub = Subscription(std::move(ranges), next_id++);
        trace.subscribe_count += 1;

        // Fate: immortal, TTL-expired, or explicitly unsubscribed.
        if (rng.bernoulli(config.immortal_fraction)) {
          op.kind = ChurnOpKind::kSubscribe;
        } else if (rng.bernoulli(config.ttl_fraction)) {
          op.kind = ChurnOpKind::kSubscribeTtl;
          const double lifetime = sample_exponential(rng, config.mean_lifetime);
          const auto ttl_slots = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(std::llround(lifetime / config.slot)));
          // Whole slots plus half a slot: the expiry instant sits mid-slot,
          // clear of every cascade window (see header contract).
          op.ttl = static_cast<double>(ttl_slots) * config.slot + config.slot / 2;
        } else {
          op.kind = ChurnOpKind::kSubscribe;
          const double lifetime = sample_exponential(rng, config.mean_lifetime);
          pending.push(Proto{proto.t + lifetime, ChurnOpKind::kUnsubscribe,
                             seq++, op.sub.id(), op.broker});
        }
        break;
      }
      case ChurnOpKind::kPublish: {
        const auto& center = hotspots[hotspot_rank.sample(rng)];
        std::vector<double> point;
        point.reserve(config.attribute_count);
        for (std::size_t a = 0; a < config.attribute_count; ++a) {
          point.push_back(std::clamp(center[a] + jitter.sample(rng),
                                     config.domain_lo, config.domain_hi));
        }
        op.kind = ChurnOpKind::kPublish;
        op.broker = static_cast<BrokerId>(rng.next_below(broker_count));
        op.pub = Publication(std::move(point));
        trace.publish_count += 1;
        break;
      }
      case ChurnOpKind::kUnsubscribe:
        op.kind = ChurnOpKind::kUnsubscribe;
        op.id = proto.unsub_id;
        op.broker = proto.unsub_home;
        break;
      case ChurnOpKind::kSubscribeTtl:
      case ChurnOpKind::kAdvance:
        continue;  // never enqueued as proto events
    }
    trace.ops.push_back(std::move(op));
  }

  // Closing advance: fires every expiry due by the end of the run, so a
  // replayed trace ends with both replicas at the same instant.
  ChurnOp closing;
  closing.kind = ChurnOpKind::kAdvance;
  closing.time =
      static_cast<double>(std::max(last_slot + 1, slot_of(config.duration))) *
      config.slot;
  trace.ops.push_back(std::move(closing));
  return trace;
}

}  // namespace psc::workload
