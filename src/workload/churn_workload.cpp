#include "workload/churn_workload.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <optional>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/interval.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace psc::workload {

using core::Interval;
using core::Publication;
using core::Subscription;
using core::SubscriptionId;
using routing::BrokerId;

namespace {

/// Exponential variate with the given mean (inverse-CDF, one rng call).
double sample_exponential(util::Rng& rng, double mean) {
  const double u = 1.0 - rng.next_double();  // (0, 1], avoids log(0)
  return -mean * std::log(u);
}

void validate(const ChurnConfig& c, std::size_t broker_count,
              std::size_t cascade_broker_bound) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("generate_churn_trace: ") + what);
  };
  if (broker_count == 0) fail("broker_count must be > 0");
  const auto& m = c.membership;
  if (m.join_rate < 0 || m.leave_rate < 0 || m.crash_rate < 0 ||
      m.partition_rate < 0) {
    fail("negative membership rate");
  }
  if (m.any()) {
    if (!(m.partition_mean > 0)) fail("partition_mean must be > 0");
    if (!(m.replace_mean > 0)) fail("replace_mean must be > 0");
    if (m.min_brokers == 0) fail("min_brokers must be > 0");
    if (m.min_brokers > broker_count) fail("min_brokers above broker_count");
    if (m.max_brokers != 0 && m.max_brokers < broker_count) {
      fail("max_brokers below initial broker_count");
    }
  }
  if (c.attribute_count == 0) fail("attribute_count must be > 0");
  if (!(c.domain_hi > c.domain_lo)) fail("domain must be non-empty");
  if (c.subscription_rate < 0 || c.publication_rate < 0) fail("negative rate");
  if (c.subscription_rate + c.publication_rate <= 0) fail("all rates zero");
  if (c.ttl_fraction < 0 || c.ttl_fraction > 1) fail("ttl_fraction outside [0,1]");
  if (c.immortal_fraction < 0 || c.immortal_fraction > 1) {
    fail("immortal_fraction outside [0,1]");
  }
  if (!(c.mean_lifetime > 0)) fail("mean_lifetime must be > 0");
  if (c.hotspot_count == 0) fail("hotspot_count must be > 0");
  if (c.zipf_skew < 0) fail("zipf_skew must be >= 0");
  if (!(c.hotspot_radius_fraction >= 0)) fail("hotspot_radius_fraction < 0");
  if (!(c.width_fraction_lo > 0) || c.width_fraction_hi < c.width_fraction_lo ||
      c.width_fraction_hi > 1.0) {
    fail("width fractions need 0 < lo <= hi <= 1");
  }
  const auto& f = c.faults;
  if (f.link.drop_probability < 0 || f.link.drop_probability > 1 ||
      f.link.dup_probability < 0 || f.link.dup_probability > 1 ||
      f.link.reorder_probability < 0 || f.link.reorder_probability > 1) {
    fail("fault rates must be in [0, 1]");
  }
  if (f.link.delay_jitter < 0) fail("delay_jitter must be >= 0");
  if (f.cascade_hop_bound < 0) fail("cascade_hop_bound must be >= 0");
  if (f.any()) {
    // The caller must size the per-hop bound from the reliable protocol it
    // will replay against (routing::LinkConfig::worst_hop_delay); the raw
    // latency would let retransmit chains spill past mid-slot expiries.
    if (!(f.cascade_hop_bound >= c.link_latency)) {
      fail("faults require cascade_hop_bound >= link_latency");
    }
  }
  if (f.burst_count > 0 && !(f.burst_length > 0)) {
    fail("bursts require burst_length > 0");
  }
  if (!(c.slot > 0) || !(c.duration >= c.slot)) fail("need 0 < slot <= duration");
  if (!(c.link_latency > 0)) fail("link_latency must be > 0");
  if (!(c.epoch_length > 0)) fail("epoch_length must be > 0");
  // Epoch boundaries must land on slot boundaries, or a driver snapshot
  // could fall on a mid-slot expiry instant and observe mid-cascade state.
  const double epoch_slots = c.epoch_length / c.slot;
  if (std::abs(epoch_slots - std::round(epoch_slots)) > 1e-9) {
    fail("epoch_length must be a whole number of slots");
  }
  // The differential time contract: expiries sit half a slot past a
  // boundary, which must clear the worst-case cascade window. Under
  // membership churn the overlay can GROW, so the bound uses the join cap
  // rather than the initial broker count. With link faults the per-hop
  // time is the protocol's worst retransmit chain, not the raw latency.
  const double hop_bound =
      c.faults.any() ? c.faults.cascade_hop_bound : c.link_latency;
  if (c.slot / 2 <= static_cast<double>(cascade_broker_bound + 1) * hop_bound) {
    fail("slot too small: slot/2 must exceed (brokers + 1) * hop bound");
  }
}

/// Pending proto-event: payloads are sampled at pop time so the RNG stream
/// is consumed in one deterministic (time, insertion) order.
struct Proto {
  double t = 0.0;
  ChurnOpKind kind = ChurnOpKind::kAdvance;
  std::uint64_t seq = 0;           ///< FIFO tie-break
  SubscriptionId unsub_id = 0;     ///< kUnsubscribe payload
  BrokerId unsub_home = 0;
  std::uint8_t member = 0;         ///< kMembership: MembershipOpKind value
  BrokerId target = 0;             ///< kReplace: the broker to revive
};

struct ProtoLater {
  bool operator()(const Proto& a, const Proto& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

ChurnTrace generate_impl(const ChurnConfig& config, std::size_t broker_count,
                         const routing::MembershipUniverse* universe,
                         std::uint64_t seed) {
  const std::size_t max_brokers =
      config.membership.max_brokers != 0 ? config.membership.max_brokers
                                         : 2 * broker_count;
  validate(config, broker_count,
           config.membership.any() ? max_brokers : broker_count);

  ChurnTrace trace;
  trace.config = config;
  trace.broker_count = broker_count;
  trace.seed = seed;
  if (universe != nullptr) {
    trace.has_membership = true;
    trace.universe = *universe;
  }

  // The generator's own link-state replica: membership protos are checked
  // for feasibility against it and mutate it exactly as the network and
  // oracle will, so every emitted op is legal by construction. `alive`
  // mirrors its alive set as a sorted vector for uniform target sampling.
  std::optional<routing::LinkState> state;
  std::vector<BrokerId> alive;
  if (universe != nullptr) {
    state.emplace(*universe);  // throws if the live links are cyclic
    alive.reserve(max_brokers);
    for (std::size_t b = 0; b < broker_count; ++b) {
      alive.push_back(static_cast<BrokerId>(b));
    }
  }

  util::Rng rng(seed);

  // Scripted burst-loss windows: drawn first, so a burst-free config's op
  // stream is untouched and a bursted one is deterministic per (config,
  // seed). Each window starts ON a slot boundary — ops issued inside it
  // send their first frames straight into 100% loss — and covers
  // burst_length seconds on a uniformly drawn universe link (both
  // directions). A window longer than the retransmit chain plus a slot
  // guarantees any frame sent in its first slot exhausts the retry cap.
  if (config.faults.burst_count > 0) {
    if (universe == nullptr || trace.universe.links.empty()) {
      throw std::invalid_argument(
          "generate_churn_trace: burst windows require a universe with links");
    }
    const auto total_slots =
        static_cast<std::uint64_t>(config.duration / config.slot);
    const auto burst_slots = static_cast<std::uint64_t>(std::ceil(
                                 config.faults.burst_length / config.slot)) +
                             1;
    const std::uint64_t range =
        total_slots > burst_slots + 1 ? total_slots - burst_slots : 1;
    for (std::size_t i = 0; i < config.faults.burst_count; ++i) {
      const auto& link = trace.universe.links[rng.next_below(
          trace.universe.links.size())];
      LinkBurst burst;
      burst.start = static_cast<double>(1 + rng.next_below(range)) * config.slot;
      burst.end = burst.start + config.faults.burst_length;
      burst.a = link.first;
      burst.b = link.second;
      trace.bursts.push_back(burst);
    }
    std::sort(trace.bursts.begin(), trace.bursts.end(),
              [](const LinkBurst& a, const LinkBurst& b) {
                if (a.start != b.start) return a.start < b.start;
                if (a.a != b.a) return a.a < b.a;
                return a.b < b.b;
              });
  }

  const double domain_width = config.domain_hi - config.domain_lo;
  const util::ZipfSampler hotspot_rank(config.hotspot_count, config.zipf_skew);
  const util::NormalSampler jitter(0.0,
                                   config.hotspot_radius_fraction * domain_width);

  // Hotspot centers: the popular regions both sides of the workload share.
  std::vector<std::vector<double>> hotspots(config.hotspot_count);
  for (auto& center : hotspots) {
    center.reserve(config.attribute_count);
    for (std::size_t a = 0; a < config.attribute_count; ++a) {
      center.push_back(rng.uniform(config.domain_lo, config.domain_hi));
    }
  }

  // Poisson arrival processes (exponential inter-arrival times).
  std::priority_queue<Proto, std::vector<Proto>, ProtoLater> pending;
  std::uint64_t seq = 0;
  if (config.subscription_rate > 0) {
    for (double t = sample_exponential(rng, 1.0 / config.subscription_rate);
         t < config.duration;
         t += sample_exponential(rng, 1.0 / config.subscription_rate)) {
      pending.push(Proto{t, ChurnOpKind::kSubscribe, seq++, 0, 0});
    }
  }
  if (config.publication_rate > 0) {
    for (double t = sample_exponential(rng, 1.0 / config.publication_rate);
         t < config.duration;
         t += sample_exponential(rng, 1.0 / config.publication_rate)) {
      pending.push(Proto{t, ChurnOpKind::kPublish, seq++, 0, 0});
    }
  }
  if (universe != nullptr) {
    using routing::MembershipOpKind;
    const auto stream = [&](double rate, MembershipOpKind member) {
      if (rate <= 0) return;
      for (double t = sample_exponential(rng, 1.0 / rate); t < config.duration;
           t += sample_exponential(rng, 1.0 / rate)) {
        Proto proto{t, ChurnOpKind::kMembership, seq++, 0, 0};
        proto.member = static_cast<std::uint8_t>(member);
        pending.push(proto);
      }
    };
    stream(config.membership.join_rate, MembershipOpKind::kJoin);
    stream(config.membership.leave_rate, MembershipOpKind::kLeave);
    stream(config.membership.crash_rate, MembershipOpKind::kCrash);
    stream(config.membership.partition_rate, MembershipOpKind::kFailLink);
  }

  // Slot assignment: ops are serialized one-per-slot in event order, so
  // every op owns a quiet boundary and replay is collision-free.
  const auto slot_of = [&](double t) {
    return static_cast<std::uint64_t>(std::ceil(t / config.slot));
  };
  std::uint64_t last_slot = 0;  // slot 0 is reserved: time 0 issues nothing
  SubscriptionId next_id = 1;

  // Explicit-unsubscribe protos outstanding, by home broker: a graceful
  // leave takes its registry entries with it, so their unsubscribes must
  // be dropped from the trace (a crash keeps the registry — those stay).
  std::unordered_map<SubscriptionId, BrokerId> pending_unsub;
  std::set<SubscriptionId> gone;

  // Uniform target over the currently-alive brokers (all of them when
  // membership is off).
  const auto pick_broker = [&]() {
    if (state) return alive[rng.next_below(alive.size())];
    return static_cast<BrokerId>(rng.next_below(broker_count));
  };
  const auto drop_alive = [&](BrokerId b) {
    alive.erase(std::find(alive.begin(), alive.end(), b));
  };

  while (!pending.empty()) {
    Proto proto = pending.top();
    pending.pop();
    if (proto.t >= config.duration) continue;
    const std::uint64_t op_slot = std::max(slot_of(proto.t), last_slot + 1);
    const double op_time = static_cast<double>(op_slot) * config.slot;
    last_slot = op_slot;

    ChurnOp op;
    op.time = op_time;
    switch (proto.kind) {
      case ChurnOpKind::kSubscribe: {
        // Box around a Zipf-popular hotspot: popular regions accumulate
        // overlapping subscriptions, which is what coverage pruning eats.
        const auto& center = hotspots[hotspot_rank.sample(rng)];
        std::vector<Interval> ranges;
        ranges.reserve(config.attribute_count);
        for (std::size_t a = 0; a < config.attribute_count; ++a) {
          const double mid = std::clamp(center[a] + jitter.sample(rng),
                                        config.domain_lo, config.domain_hi);
          const double width = rng.uniform(config.width_fraction_lo,
                                           config.width_fraction_hi) *
                               domain_width;
          ranges.emplace_back(
              std::max(config.domain_lo, mid - width / 2),
              std::min(config.domain_hi, mid + width / 2));
        }
        op.broker = pick_broker();
        op.sub = Subscription(std::move(ranges), next_id++);
        trace.subscribe_count += 1;

        // Fate: immortal, TTL-expired, or explicitly unsubscribed.
        if (rng.bernoulli(config.immortal_fraction)) {
          op.kind = ChurnOpKind::kSubscribe;
        } else if (rng.bernoulli(config.ttl_fraction)) {
          op.kind = ChurnOpKind::kSubscribeTtl;
          const double lifetime = sample_exponential(rng, config.mean_lifetime);
          const auto ttl_slots = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(std::llround(lifetime / config.slot)));
          // Whole slots plus half a slot: the expiry instant sits mid-slot,
          // clear of every cascade window (see header contract).
          op.ttl = static_cast<double>(ttl_slots) * config.slot + config.slot / 2;
        } else {
          op.kind = ChurnOpKind::kSubscribe;
          const double lifetime = sample_exponential(rng, config.mean_lifetime);
          pending.push(Proto{proto.t + lifetime, ChurnOpKind::kUnsubscribe,
                             seq++, op.sub.id(), op.broker});
          pending_unsub.emplace(op.sub.id(), op.broker);
        }
        break;
      }
      case ChurnOpKind::kPublish: {
        const auto& center = hotspots[hotspot_rank.sample(rng)];
        std::vector<double> point;
        point.reserve(config.attribute_count);
        for (std::size_t a = 0; a < config.attribute_count; ++a) {
          point.push_back(std::clamp(center[a] + jitter.sample(rng),
                                     config.domain_lo, config.domain_hi));
        }
        op.kind = ChurnOpKind::kPublish;
        op.broker = pick_broker();
        op.pub = Publication(std::move(point));
        trace.publish_count += 1;
        break;
      }
      case ChurnOpKind::kUnsubscribe:
        if (gone.count(proto.unsub_id) > 0) continue;  // home broker left
        pending_unsub.erase(proto.unsub_id);
        op.kind = ChurnOpKind::kUnsubscribe;
        op.id = proto.unsub_id;
        op.broker = proto.unsub_home;
        break;
      case ChurnOpKind::kMembership: {
        using routing::MembershipOpKind;
        const auto member = static_cast<MembershipOpKind>(proto.member);
        op.kind = ChurnOpKind::kMembership;
        op.member = proto.member;
        switch (member) {
          case MembershipOpKind::kJoin: {
            if (state->broker_count() >= max_brokers) continue;
            const BrokerId attach = pick_broker();
            const BrokerId id = state->add_broker();
            state->add_link(attach, id);
            alive.push_back(id);  // dense ids, so the vector stays sorted
            op.broker = attach;
            op.peer = id;  // replay asserts the network hands out this id
            break;
          }
          case MembershipOpKind::kLeave: {
            if (state->alive_count() <= config.membership.min_brokers) continue;
            const BrokerId b = pick_broker();
            for (const auto& [sid, home] : pending_unsub) {
              if (home == b) gone.insert(sid);
            }
            (void)state->remove_peer(b);
            drop_alive(b);
            op.broker = b;
            break;
          }
          case MembershipOpKind::kCrash: {
            if (state->alive_count() <= config.membership.min_brokers) continue;
            const BrokerId b = pick_broker();
            (void)state->crash_peer(b);
            drop_alive(b);
            Proto replace{
                proto.t + sample_exponential(rng, config.membership.replace_mean),
                ChurnOpKind::kMembership, seq++, 0, 0};
            replace.member = static_cast<std::uint8_t>(MembershipOpKind::kReplace);
            replace.target = b;
            pending.push(replace);
            op.broker = b;
            break;
          }
          case MembershipOpKind::kReplace: {
            // One replace proto per crash, and only replace revives, so the
            // target must still be down; guard anyway for robustness.
            if (state->is_alive(proto.target)) continue;
            (void)state->replace_peer(proto.target);
            alive.insert(std::lower_bound(alive.begin(), alive.end(),
                                          proto.target),
                         proto.target);
            op.broker = proto.target;
            break;
          }
          case MembershipOpKind::kFailLink: {
            if (state->live_links().empty()) continue;
            auto it = state->live_links().begin();
            std::advance(it, rng.next_below(state->live_links().size()));
            const auto [a, b] = *it;
            state->fail_link(a, b);
            Proto heal{proto.t + sample_exponential(
                                     rng, config.membership.partition_mean),
                       ChurnOpKind::kMembership, seq++, 0, 0};
            heal.member = static_cast<std::uint8_t>(MembershipOpKind::kHealLink);
            pending.push(heal);
            op.broker = a;
            op.peer = b;
            break;
          }
          case MembershipOpKind::kHealLink: {
            // Uniform over ALL healable down links, not the one that
            // failed: on cyclic universes this rotates the standby bridges.
            std::vector<std::pair<BrokerId, BrokerId>> healable;
            for (const auto& [a, b] : state->failed_links()) {
              if (!state->is_alive(a) || !state->is_alive(b)) continue;
              if (state->same_component(a, b)) continue;
              healable.push_back({a, b});
            }
            if (healable.empty()) continue;
            const auto [a, b] = healable[rng.next_below(healable.size())];
            state->heal_link(a, b);
            op.broker = a;
            op.peer = b;
            break;
          }
        }
        trace.membership_count += 1;
        break;
      }
      case ChurnOpKind::kSubscribeTtl:
      case ChurnOpKind::kAdvance:
        continue;  // never enqueued as proto events
    }
    trace.ops.push_back(std::move(op));
  }

  // Closing advance: fires every expiry due by the end of the run, so a
  // replayed trace ends with both replicas at the same instant.
  ChurnOp closing;
  closing.kind = ChurnOpKind::kAdvance;
  closing.time =
      static_cast<double>(std::max(last_slot + 1, slot_of(config.duration))) *
      config.slot;
  trace.ops.push_back(std::move(closing));
  return trace;
}

}  // namespace

ChurnTrace generate_churn_trace(const ChurnConfig& config,
                                std::size_t broker_count, std::uint64_t seed) {
  if (config.membership.any()) {
    throw std::invalid_argument(
        "generate_churn_trace: membership rates require the universe "
        "overload");
  }
  return generate_impl(config, broker_count, nullptr, seed);
}

ChurnTrace generate_churn_trace(const ChurnConfig& config,
                                const routing::MembershipUniverse& universe,
                                std::uint64_t seed) {
  return generate_impl(config, universe.brokers, &universe, seed);
}

}  // namespace psc::workload
