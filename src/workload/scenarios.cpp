#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psc::workload {

namespace {

using core::Interval;
using core::Subscription;
using core::Value;

void validate(const ScenarioConfig& config) {
  if (config.attribute_count == 0) {
    throw std::invalid_argument("ScenarioConfig: attribute_count must be > 0");
  }
  if (!(config.domain_lo < config.domain_hi)) {
    throw std::invalid_argument("ScenarioConfig: domain must be non-empty");
  }
  if (!(config.tested_width_fraction > 0.0 && config.tested_width_fraction <= 1.0)) {
    throw std::invalid_argument(
        "ScenarioConfig: tested_width_fraction must be in (0, 1]");
  }
}

Value domain_width(const ScenarioConfig& config) {
  return config.domain_hi - config.domain_lo;
}

/// Box for s: fixed relative width, random placement inside the domain.
Subscription make_tested(const ScenarioConfig& config, util::Rng& rng) {
  const Value width = domain_width(config) * config.tested_width_fraction;
  std::vector<Interval> ranges(config.attribute_count);
  for (auto& range : ranges) {
    const Value lo = rng.uniform(config.domain_lo, config.domain_hi - width);
    range = {lo, lo + width};
  }
  return Subscription(std::move(ranges));
}

/// Interval overlapping `target` interior-wise but covering neither side
/// fully when possible — used so no distractor pairwise-covers s.
Interval overlapping_interval(const Interval& target, const ScenarioConfig& config,
                              util::Rng& rng) {
  const Value width = target.width();
  // Pick an interval of comparable width whose center falls inside target;
  // this guarantees interior overlap and usually leaves both sides exposed.
  const Value w = width * rng.uniform(0.6, 1.4);
  const Value center = rng.uniform(target.lo + 0.1 * width, target.hi - 0.1 * width);
  Value lo = center - w / 2;
  Value hi = center + w / 2;
  lo = std::max(lo, config.domain_lo);
  hi = std::min(hi, config.domain_hi);
  return {lo, hi};
}

/// A redundant "filler" subscription: constrains `constrained_count` random
/// attributes of the target with one-sided partial coverage (covering a
/// random 30-80 % of the target's range from a random side) and covers the
/// target fully (with padding) on every other attribute. This mirrors how
/// real subscriptions constrain only the few attributes a user cares
/// about; geometrically it is what gives the conflict table its
/// conflict-free entries, the fuel of the MCS reduction.
Subscription partial_filler(const ScenarioConfig& config,
                            const Subscription& target,
                            std::size_t constrained_count, util::Rng& rng) {
  const std::size_t m = target.attribute_count();
  constrained_count = std::min(constrained_count, m);
  std::vector<char> constrained(m, 0);
  std::size_t picked = 0;
  while (picked < constrained_count) {
    const std::size_t attr = rng.next_below(m);
    if (!constrained[attr]) {
      constrained[attr] = 1;
      ++picked;
    }
  }
  std::vector<Interval> ranges(m);
  for (std::size_t j = 0; j < m; ++j) {
    const Interval r = target.range(j);
    const Value pad = r.width() * rng.uniform(0.02, 0.15);
    if (!constrained[j]) {
      ranges[j] = {r.lo - pad, r.hi + pad};
      continue;
    }
    // Coverage fractions stay mostly below one half: two opposite-side
    // partial coverers then rarely overlap (f + f' >= 1 is rare), so their
    // negated-bound entries rarely conflict — the regime in which MCS
    // achieves the paper's 0.7-1.0 removal ratios. Larger fractions would
    // make every entry conflicting and MCS powerless, which contradicts
    // the measured Figure 6/8 behaviour.
    const double fraction = rng.uniform(0.25, 0.55);
    if (rng.bernoulli(0.5)) {  // cover the lower part of the range
      ranges[j] = {r.lo - pad, r.lo + fraction * r.width()};
    } else {  // cover the upper part
      ranges[j] = {r.hi - fraction * r.width(), r.hi + pad};
    }
  }
  (void)config;
  return Subscription(std::move(ranges));
}

}  // namespace

Subscription random_box(const ScenarioConfig& config, double min_fraction,
                        double max_fraction, util::Rng& rng) {
  validate(config);
  std::vector<Interval> ranges(config.attribute_count);
  for (auto& range : ranges) {
    const Value width =
        domain_width(config) * rng.uniform(min_fraction, max_fraction);
    const Value lo = rng.uniform(config.domain_lo, config.domain_hi - width);
    range = {lo, lo + width};
  }
  return Subscription(std::move(ranges));
}

Subscription random_overlapping_box(const ScenarioConfig& config,
                                    const Subscription& target, util::Rng& rng) {
  std::vector<Interval> ranges(target.attribute_count());
  for (std::size_t j = 0; j < target.attribute_count(); ++j) {
    ranges[j] = overlapping_interval(target.range(j), config, rng);
  }
  Subscription candidate(std::move(ranges));
  // Extremely unlikely, but never hand back a pairwise cover of the target:
  // shave one side on a random attribute if it happened.
  if (candidate.covers(target)) {
    const std::size_t j = rng.next_below(target.attribute_count());
    const Interval tr = target.range(j);
    std::vector<Interval> fixed(candidate.ranges().begin(),
                                candidate.ranges().end());
    fixed[j] = {tr.lo + 0.25 * tr.width(), fixed[j].hi};
    candidate = Subscription(std::move(fixed));
  }
  return candidate;
}

Instance make_pairwise_covering(const ScenarioConfig& config, util::Rng& rng) {
  validate(config);
  Instance inst;
  inst.tested = make_tested(config, rng);
  inst.expected_covered = true;
  inst.existing.reserve(config.set_size);

  // The covering subscription: s expanded slightly on every side (clamped
  // to the domain; expansion beyond the domain is fine for subscriptions).
  std::vector<Interval> cover(config.attribute_count);
  for (std::size_t j = 0; j < config.attribute_count; ++j) {
    const Interval r = inst.tested.range(j);
    const Value pad = r.width() * rng.uniform(0.01, 0.2);
    cover[j] = {r.lo - pad, r.hi + pad};
  }
  inst.existing.emplace_back(std::move(cover));

  for (std::size_t i = 1; i < config.set_size; ++i) {
    inst.existing.push_back(random_overlapping_box(config, inst.tested, rng));
  }
  // Shuffle so the covering subscription is not always row 0.
  for (std::size_t i = inst.existing.size(); i > 1; --i) {
    std::swap(inst.existing[i - 1], inst.existing[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i < inst.existing.size(); ++i) {
    inst.existing[i].set_id(i + 1);
  }
  return inst;
}

Instance make_redundant_covering(const ScenarioConfig& config, util::Rng& rng) {
  validate(config);
  Instance inst;
  inst.tested = make_tested(config, rng);
  inst.expected_covered = true;

  const std::size_t cover_count = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(0.2 * static_cast<double>(config.set_size))));

  // Jointly-covering prefix: partition s along a random attribute into
  // `cover_count` overlapping slabs; each slab subscription covers s fully
  // on every other attribute (with padding) but only its slab on the split
  // axis — so no single one covers s, while the union does.
  const std::size_t split_axis = rng.next_below(config.attribute_count);
  const Interval split_range = inst.tested.range(split_axis);
  const Value slab_width =
      split_range.width() / static_cast<double>(cover_count);

  inst.existing.reserve(config.set_size);
  for (std::size_t i = 0; i < cover_count; ++i) {
    std::vector<Interval> ranges(config.attribute_count);
    for (std::size_t j = 0; j < config.attribute_count; ++j) {
      const Interval r = inst.tested.range(j);
      if (j == split_axis) {
        // Slab with ~10 % overlap into the neighbours so slabs pairwise
        // intersect, clipped to never cover the full split range.
        const Value lo =
            split_range.lo + slab_width * static_cast<double>(i) -
            (i == 0 ? 0.0 : 0.1 * slab_width);
        const Value hi =
            split_range.lo + slab_width * static_cast<double>(i + 1) +
            (i + 1 == cover_count ? 0.0 : 0.1 * slab_width);
        // Extend the outermost slabs outward a little beyond s so coverage
        // at the boundary is unambiguous.
        const Value pad = 0.05 * slab_width;
        ranges[j] = {i == 0 ? lo - pad : lo, i + 1 == cover_count ? hi + pad : hi};
      } else {
        const Value pad = r.width() * rng.uniform(0.02, 0.15);
        ranges[j] = {r.lo - pad, r.hi + pad};
      }
    }
    inst.existing.emplace_back(std::move(ranges));
  }

  // Redundant 80 %: subscriptions constraining only a few attributes with
  // one-sided partial coverage — redundant for the covering question and
  // mostly removable by MCS (the paper's Figure 6 measures exactly this).
  for (std::size_t i = cover_count; i < config.set_size; ++i) {
    const std::size_t constrained = 1 + rng.next_below(3);
    inst.existing.push_back(
        partial_filler(config, inst.tested, constrained, rng));
  }

  for (std::size_t i = inst.existing.size(); i > 1; --i) {
    std::swap(inst.existing[i - 1], inst.existing[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i < inst.existing.size(); ++i) {
    inst.existing[i].set_id(i + 1);
  }
  return inst;
}

Instance make_no_intersection(const ScenarioConfig& config, util::Rng& rng) {
  validate(config);
  Instance inst;
  // Keep s in the lower half of attribute 0's domain and all s_i strictly
  // in the upper half — disjointness via a single separating axis.
  ScenarioConfig tested_config = config;
  tested_config.domain_hi =
      config.domain_lo + 0.45 * domain_width(config);
  tested_config.tested_width_fraction =
      std::min(1.0, config.tested_width_fraction);
  inst.tested = make_tested(tested_config, rng);
  inst.expected_covered = false;

  ScenarioConfig others = config;
  others.domain_lo = config.domain_lo + 0.55 * domain_width(config);
  inst.existing.reserve(config.set_size);
  for (std::size_t i = 0; i < config.set_size; ++i) {
    Subscription si = random_box(others, 0.1, 0.4, rng);
    si.set_id(i + 1);
    inst.existing.push_back(std::move(si));
  }
  return inst;
}

Instance make_non_cover(const ScenarioConfig& config, util::Rng& rng) {
  // Scenario 2.b: force a two-sided uncovered slab on attribute 0 and
  // generate the other attributes randomly (partial overlaps of s), per the
  // paper: "forcing the non-covering of s by leaving a small range over x1
  // uncovered; the values over the other attributes are generated randomly".
  validate(config);
  Instance inst;
  inst.tested = make_tested(config, rng);
  inst.expected_covered = false;

  const Interval gap_axis = inst.tested.range(0);
  const Value gap_width = gap_axis.width() * 0.1;
  const Value gap_lo =
      rng.uniform(gap_axis.lo + 0.15 * gap_axis.width(),
                  gap_axis.hi - 0.15 * gap_axis.width() - gap_width);
  const Value gap_hi = gap_lo + gap_width;

  inst.existing.reserve(config.set_size);
  for (std::size_t i = 0; i < config.set_size; ++i) {
    // Start from a few-attribute partial filler (random values on the
    // other attributes, paper 2.b), then pin the gap axis.
    const std::size_t constrained = rng.next_below(3);  // 0-2 extra attrs
    Subscription base = partial_filler(config, inst.tested, constrained, rng);
    std::vector<Interval> ranges(base.ranges().begin(), base.ranges().end());
    // Gap axis: land entirely left or right of the forced gap. Starting
    // points may fall inside s so same-side subscriptions overlap partially
    // (occasional conflict-table conflicts keep a few rows alive, matching
    // the <1.0 reduction the paper reports).
    // Each subscription spans from outside s up to (not into) the gap, so
    // its gap-side entry is the slab it fails to cover. Same-side
    // subscriptions nest rather than chain (no lower entries on the gap
    // axis), keeping those entries conflict-free — which is why MCS
    // detects the non-cover case almost for free (paper, Section 6.2).
    const bool left_side = (i % 2 == 0);
    if (left_side) {
      const Value lo = rng.uniform(config.domain_lo, gap_axis.lo);
      ranges[0] = {lo, rng.uniform((gap_axis.lo + gap_lo) / 2, gap_lo)};
    } else {
      const Value hi = rng.uniform(gap_axis.hi, config.domain_hi);
      ranges[0] = {rng.uniform(gap_hi, (gap_hi + gap_axis.hi) / 2), hi};
    }
    Subscription si(std::move(ranges));
    si.set_id(i + 1);
    inst.existing.push_back(std::move(si));
  }
  return inst;
}

Instance make_extreme_non_cover(const ScenarioConfig& config,
                                double gap_fraction, util::Rng& rng) {
  validate(config);
  if (!(gap_fraction > 0.0 && gap_fraction < 1.0)) {
    throw std::invalid_argument(
        "make_extreme_non_cover: gap_fraction must be in (0, 1)");
  }
  Instance inst;
  inst.tested = make_tested(config, rng);
  inst.expected_covered = false;

  // Scenario 2.c: s is covered entirely except a thin slice at the top of
  // attribute 0's range. The single-sided construction keeps Algorithm 2's
  // rho_w estimate tight (each subscription's uncovered slab on the gap
  // axis is exactly the slice plus its own jitter), which is what lets the
  // paper study d and the false-decision rate as pure functions of the gap
  // size and delta (Figures 11 and 12).
  const Interval gap_axis = inst.tested.range(0);
  const Value gap_width = gap_axis.width() * gap_fraction;
  const Value gap_lo = gap_axis.hi - gap_width;

  inst.existing.reserve(config.set_size);
  for (std::size_t i = 0; i < config.set_size; ++i) {
    std::vector<Interval> ranges(config.attribute_count);
    // Other attributes: cover s fully with padding.
    for (std::size_t j = 1; j < config.attribute_count; ++j) {
      const Interval r = inst.tested.range(j);
      const Value pad = r.width() * rng.uniform(0.02, 0.2);
      ranges[j] = {r.lo - pad, r.hi + pad};
    }
    // Gap axis: cover from below s up to the gap edge, shrunk by a small
    // jitter so subscriptions are not identical.
    const Value jitter = gap_width * rng.uniform(0.0, 0.05);
    ranges[0] = {gap_axis.lo - 0.05 * gap_axis.width(), gap_lo - jitter};
    Subscription si(std::move(ranges));
    si.set_id(i + 1);
    inst.existing.push_back(std::move(si));
  }
  return inst;
}

}  // namespace psc::workload
