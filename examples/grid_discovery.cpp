// Grid resource discovery — the paper's second Section 3 scenario (Table 2).
//
// Services announce capabilities as subscriptions over
// {CPU cycles, disk, memory, service-id, time window}; jobs publish their
// requirements. As services get (de)allocated their subscriptions churn,
// which is exactly the environment where cheap subsumption checking pays:
// a service whose advertised capability is covered by others need not be
// propagated through the (distributed) discovery overlay.
//
// The demo runs a churn loop: allocate (unsubscribe), release
// (re-subscribe), and measures active-set size plus matching behaviour
// under the group policy, cross-checked against ground truth.
//
// Attribute encoding:
//   0 CPU Mcycles  [0, 10000]
//   1 disk MB      [0, 10000]
//   2 memory MB    [0, 65536]
//   3 service id   [0, 4096]   (hierarchical ids hashed to ranges)
//   4 time         minutes since epoch day
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/publication.hpp"
#include "store/subscription_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace psc;
using core::Interval;
using core::Publication;
using core::Subscription;

/// A service capability: handles jobs up to its resource ceilings within
/// its availability window. "Up to" = ranges [0, ceiling] — bigger boxes
/// are strictly more capable, which produces natural nesting.
Subscription make_service(core::SubscriptionId id, util::Rng& rng) {
  const double cpu = 1000 + rng.next_below(9) * 1000;      // 1-9 Gcycles
  const double disk = 500 + rng.next_below(16) * 500;      // 0.5-8 GB
  const double mem = 1024 * (1 + rng.next_below(32));      // 1-32 GB
  const double org = rng.next_below(8) * 512;              // service subtree
  const double open = rng.next_below(12) * 120;            // shift start
  return Subscription({Interval{0, cpu}, Interval{0, disk}, Interval{0, mem},
                       Interval{org, org + 511},
                       Interval{open, open + 480}},
                      id);
}

/// A job's requirements as a point: needs exactly these resources at this
/// time from this service subtree.
Publication make_job(util::Rng& rng) {
  return Publication({static_cast<double>(500 + rng.next_below(6000)),
                      static_cast<double>(100 + rng.next_below(6000)),
                      static_cast<double>(512 + rng.next_below(24576)),
                      static_cast<double>(rng.next_below(4096)),
                      static_cast<double>(rng.next_below(1440))});
}

}  // namespace

int main() {
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kGroup;
  config.engine.delta = 1e-6;
  store::SubscriptionStore registry(config, /*seed=*/11);

  util::Rng rng(424242);
  std::vector<Subscription> services;
  for (core::SubscriptionId id = 1; id <= 400; ++id) {
    Subscription svc = make_service(id, rng);
    registry.insert(svc);
    services.push_back(std::move(svc));
  }
  std::cout << "registered 400 service capabilities\n"
            << "  active: " << registry.active_count()
            << ", covered: " << registry.covered_count() << "\n";

  // Churn: allocation removes a service's announcement; completion
  // re-announces it. Covered announcements promote automatically when
  // their coverers disappear (paper, Section 5).
  std::size_t scheduled = 0, unmatched = 0, mismatches = 0;
  for (int round = 0; round < 500; ++round) {
    // Allocate: a random present service goes busy.
    const std::size_t victim = rng.next_below(services.size());
    const auto victim_id = services[victim].id();
    if (registry.contains(victim_id)) registry.erase(victim_id);

    // A job arrives; match it against the registry.
    const Publication job = make_job(rng);
    const auto offers = registry.match(job);
    scheduled += offers.empty() ? 0 : 1;
    unmatched += offers.empty() ? 1 : 0;

    // Ground truth: direct scan over the services currently registered.
    std::size_t truth = 0;
    for (const auto& svc : services) {
      if (registry.contains(svc.id()) && job.matches(svc)) ++truth;
    }
    if (offers.size() != truth) ++mismatches;

    // Release: the busy service comes back.
    if (!registry.contains(victim_id)) registry.insert(services[victim]);
  }

  std::cout << "\nafter 500 allocate/match/release rounds:\n"
            << "  jobs with at least one offer: " << scheduled << "\n"
            << "  jobs with no capable service: " << unmatched << "\n"
            << "  matcher vs ground-truth mismatches: " << mismatches << "\n"
            << "  final active: " << registry.active_count()
            << ", covered: " << registry.covered_count() << "\n";
  return mismatches == 0 ? 0 : 1;
}
