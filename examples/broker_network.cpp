// Broker network — the paper's Figure 1 walk-through, end to end on the
// discrete-event simulator, then a policy shoot-out on the same topology.
//
// Nine brokers; subscriber S1 at B1, S2 at B6; publishers P1 at B9,
// P2 at B5. s2 is covered by s1, so reverse-path forwarding with covering
// suppresses most of s2's flood; notifications still reach both
// subscribers along the delivery trees the paper draws.
#include <iostream>

#include "core/publication.hpp"
#include "routing/broker_network.hpp"
#include "util/rng.hpp"
#include "workload/publications.hpp"

namespace {

using namespace psc;
using core::Interval;
using core::Publication;
using core::Subscription;
using routing::BrokerId;
using routing::BrokerNetwork;
using routing::NetworkConfig;

BrokerId B(int n) { return static_cast<BrokerId>(n - 1); }

NetworkConfig with_policy(store::CoveragePolicy policy) {
  NetworkConfig config;
  config.store.policy = policy;
  return config;
}

const char* policy_name(store::CoveragePolicy policy) {
  switch (policy) {
    case store::CoveragePolicy::kNone: return "flooding ";
    case store::CoveragePolicy::kPairwise: return "pairwise ";
    case store::CoveragePolicy::kGroup: return "group    ";
    case store::CoveragePolicy::kExact: return "exact    ";
  }
  return "?";
}

}  // namespace

int main() {
  // --- Part 1: the paper's example, step by step -------------------------
  auto net = BrokerNetwork::figure1_topology(
      with_policy(store::CoveragePolicy::kPairwise));

  const Subscription s1({Interval{0, 10}, Interval{0, 10}}, 1);   // S1 at B1
  const Subscription s2({Interval{2, 8}, Interval{2, 8}}, 2);     // S2 at B6

  net.subscribe(B(1), s1);
  std::cout << "s1 flooded: " << net.metrics().subscription_messages
            << " messages (8 links, each crossed once)\n";

  const auto before = net.metrics().subscription_messages;
  net.subscribe(B(6), s2);
  std::cout << "s2 (covered by s1): only "
            << net.metrics().subscription_messages - before
            << " further messages, " << net.metrics().subscriptions_suppressed
            << " link(s) suppressed by covering\n";

  // P1 at B9 publishes n1 matching s2 (hence also s1): the delivery tree
  // B9-B7-B4-B3-B1 + B4-B6 from the paper.
  auto delivered = net.publish(B(9), Publication({5.0, 5.0}, 1));
  std::cout << "n1 from B9 delivered to " << delivered.size()
            << " subscribers (s1 and s2)\n";

  // P2 at B5 publishes n2 matching only s1: tree B5-B4-B3-B1.
  delivered = net.publish(B(5), Publication({9.5, 9.5}, 2));
  std::cout << "n2 from B5 delivered to " << delivered.size()
            << " subscriber (s1)\n";
  std::cout << "lost notifications: " << net.metrics().notifications_lost
            << "\n\n";

  // --- Part 2: policy shoot-out on the same topology ---------------------
  // 60 clustered subscriptions spread over the leaf brokers, then 200
  // publications from the two publisher brokers. Compare subscription
  // traffic, publication traffic and delivery for the three policies.
  std::cout << "policy     sub_msgs  suppressed  pub_msgs  delivered  lost\n";
  for (const auto policy :
       {store::CoveragePolicy::kNone, store::CoveragePolicy::kPairwise,
        store::CoveragePolicy::kGroup}) {
    auto arena = BrokerNetwork::figure1_topology(with_policy(policy));
    util::Rng rng(99);
    core::SubscriptionId id = 1;
    const BrokerId leaves[] = {B(1), B(2), B(5), B(6), B(8), B(9)};
    for (int i = 0; i < 60; ++i) {
      const double lo1 = rng.uniform(0, 40), lo2 = rng.uniform(0, 40);
      arena.subscribe(leaves[rng.next_below(6)],
                      Subscription({Interval{lo1, lo1 + rng.uniform(20, 60)},
                                    Interval{lo2, lo2 + rng.uniform(20, 60)}},
                                   id++));
    }
    const auto subs_msgs = arena.metrics().subscription_messages;
    for (int i = 0; i < 200; ++i) {
      const BrokerId from = (i % 2 == 0) ? B(9) : B(5);
      (void)arena.publish(from, Publication({rng.uniform(0, 100),
                                             rng.uniform(0, 100)}));
    }
    std::cout << policy_name(policy) << "  " << subs_msgs << "       "
              << arena.metrics().subscriptions_suppressed << "          "
              << arena.metrics().publication_messages << "      "
              << arena.metrics().notifications_delivered << "        "
              << arena.metrics().notifications_lost << "\n";
  }
  std::cout << "\n(flooding pays in subscription traffic; covering pays a\n"
               " tiny probabilistic-loss risk for large savings — Section 5)\n";
  return 0;
}
