// Quickstart — the 60-second tour of the psc public API.
//
// Builds the paper's worked example (Table 3): a new subscription s that no
// single existing subscription covers, but the union of s1 and s2 does.
// Shows the conflict table, the probabilistic verdict with full
// diagnostics, and the one-sided error contract.
//
// Run: ./quickstart
#include <iostream>

#include "core/conflict_table.hpp"
#include "core/engine.hpp"

int main() {
  using namespace psc::core;

  // A subscription is a conjunction of range predicates — a box. Attribute
  // order is the schema: here {x1, x2} (paper Table 3 uses rental-post ids
  // and dates; any ordered domain works).
  const Subscription s({Interval{830, 870}, Interval{1003, 1006}});
  const std::vector<Subscription> existing{
      Subscription({Interval{820, 850}, Interval{1001, 1007}}, /*id=*/1),
      Subscription({Interval{840, 880}, Interval{1002, 1009}}, /*id=*/2),
  };

  std::cout << "new subscription   " << s << "\n";
  for (const auto& si : existing) std::cout << "existing           " << si << "\n";

  // Neither s1 nor s2 covers s alone...
  for (const auto& si : existing) {
    std::cout << "covered by s" << si.id() << " alone? "
              << (si.covers(s) ? "yes" : "no") << "\n";
  }

  // ...which the conflict table (Definition 2) makes visible: each row
  // lists where s sticks out of that subscription.
  const ConflictTable table(s, existing);
  table.print(std::cout);

  // The engine answers the GROUP question: is s inside the union?
  EngineConfig config;
  config.delta = 1e-6;  // accepted probability of a wrong "covered"
  SubsumptionEngine engine(config, /*seed=*/42);
  const SubsumptionResult result = engine.check(s, existing);

  std::cout << "\ncovered by the union? " << (result.covered ? "YES" : "NO")
            << (result.is_definite ? " (definite)" : " (probabilistic)") << "\n"
            << "decision path:        " << to_string(result.path) << "\n"
            << "candidates after MCS: " << result.reduced_set_size << " of "
            << result.original_set_size << "\n"
            << "estimated rho_w:      " << result.rho_w << "\n"
            << "trial bound d:        " << result.trial_budget << "\n"
            << "trials executed:      " << result.iterations << "\n";

  // The error contract is one-sided: a NO is always correct, a YES is
  // wrong with probability at most delta. Flip the instance to a genuine
  // non-cover (paper Table 6) and the engine proves it deterministically.
  const Subscription wider({Interval{830, 890}, Interval{1003, 1006}});
  const std::vector<Subscription> narrow{
      Subscription({Interval{820, 850}, Interval{1002, 1009}}, 1),
      Subscription({Interval{840, 870}, Interval{1001, 1007}}, 2),
  };
  const SubsumptionResult no = engine.check(wider, narrow);
  std::cout << "\nnon-cover instance:   " << (no.covered ? "YES" : "NO")
            << " via " << to_string(no.path) << "\n";
  return 0;
}
