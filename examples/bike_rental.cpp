// Bike rental — the paper's Section 3 motivating scenario (Table 1).
//
// A sensor-enriched bicycle rental system: rental posts publish bike
// availability; users' profiles and context generate volatile
// subscriptions over {bID, size, brand, rpID, time}. The demo drives a
// single broker store through the paper's example subscriptions s1/s2 and
// publications p1/p2, then simulates a lunchtime burst of context-derived
// subscriptions to show group coverage holding the active set down.
//
// Attribute encoding (all ordered domains, per the paper):
//   0 bID   — bike-category id range        [1, 2000]
//   1 size  — frame size (inches)           [14, 24]
//   2 brand — brand id (X=1, Y=2, ... *=[1,B])
//   3 rpID  — rental-post id                [1, 1000]
//   4 time  — minutes since 2006-03-31 00:00
#include <iostream>

#include "core/publication.hpp"
#include "store/subscription_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace psc;
using core::Interval;
using core::Publication;
using core::Subscription;

constexpr double kBrandAny_lo = 1, kBrandAny_hi = 10;
constexpr double minutes(int hour, int minute = 0) { return hour * 60 + minute; }

}  // namespace

int main() {
  store::StoreConfig config;
  config.policy = store::CoveragePolicy::kGroup;
  config.engine.delta = 1e-6;
  store::SubscriptionStore store(config, /*seed=*/7);

  // s1: lady mountain bike (bIDs 1000-1999), size 19", brand X, near home
  //     (posts 820-840), Friday 16:00-20:00.
  const Subscription s1({Interval{1000, 1999}, Interval::point(19),
                         Interval::point(1), Interval{820, 840},
                         Interval{minutes(16), minutes(20)}},
                        1);
  // s2: any bike 17"-19", any brand, current vicinity (posts 10-12),
  //     lunch break 12:00-14:00.
  const Subscription s2({Interval{1, 1999}, Interval{17, 19},
                         Interval{kBrandAny_lo, kBrandAny_hi}, Interval{10, 12},
                         Interval{minutes(12), minutes(14)}},
                        2);
  store.insert(s1);
  store.insert(s2);

  // p1: bike 1036, 19", brand X, post 825, 18:23:05 — matches s1.
  const Publication p1({1036, 19, 1, 825, minutes(18, 23)}, 1);
  // p2: bike 1035, 17", brand Y, post 11, 12:23:05 — matches s2.
  const Publication p2({1035, 17, 2, 11, minutes(12, 23)}, 2);

  for (const auto* pub : {&p1, &p2}) {
    const auto matched = store.match(*pub);
    std::cout << *pub << "  ->  notifies subscriptions:";
    for (const auto id : matched) std::cout << " s" << id;
    std::cout << "\n";
  }

  // Lunchtime burst: phones near the city-centre posts (8-16) generate
  // short-lived subscriptions as users walk (rpID window slides, sizes and
  // categories vary slightly). Interests overlap heavily, so most of the
  // burst is group-covered and the active set stays small.
  util::Rng rng(2006);
  core::SubscriptionId next_id = 100;
  for (int i = 0; i < 300; ++i) {
    const double post = 8 + rng.next_below(8);           // sliding window
    const double size_lo = 16 + rng.next_below(3);       // 16-18
    const double start = minutes(12) + rng.next_below(60);
    store.insert(Subscription(
        {Interval{1, 1999},
         Interval{size_lo, size_lo + 2 + rng.next_below(2)},
         Interval{kBrandAny_lo, kBrandAny_hi},
         Interval{post - 2 - rng.next_below(3), post + 2 + rng.next_below(3)},
         Interval{start - 30 - rng.next_below(30), start + 90 + rng.next_below(60)}},
        next_id++));
  }
  std::cout << "\nafter a burst of 300 context-derived subscriptions:\n"
            << "  active (forwarded) subscriptions: " << store.active_count()
            << "\n  covered (suppressed):              " << store.covered_count()
            << "\n  group checks run:                  " << store.group_checks()
            << "\n";

  // A publication in the hot zone reaches everyone it should, covered or
  // not — Algorithm 5 consults covered subscriptions when an active matched.
  const Publication rush({1200, 17, 2, 12, minutes(12, 45)}, 3);
  std::cout << "\nrush-hour " << rush << " notifies "
            << store.match(rush).size() << " subscriptions\n";
  return 0;
}
