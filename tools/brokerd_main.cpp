// psc_brokerd — one pub/sub broker as a standalone process (net/ layer).
// Spawned by net::Cluster with an inherited listening socket; see
// docs/ARCHITECTURE.md, "TCP transport" for the peering protocol.
#include "net/broker_node.hpp"

int main(int argc, char** argv) { return psc::net::run_brokerd(argc, argv); }
