#!/usr/bin/env python3
"""Perf regression gate: compare a fresh perf_gate JSON against the
committed BENCH_core.json baseline.

Usage:
    check_bench.py CURRENT.json [--baseline BENCH_core.json]
                   [--threshold 0.30] [--sections stab,box_intersect,...]

Fails (exit 1) when any gated section's ops_per_sec drops more than
--threshold below the baseline. Two noise-tolerance mechanisms keep CI
honest without flaking:

  * jitter widening via the recorded p50/p99 latency fields: a section
    whose baseline p99/p50 ratio is large is inherently noisy (allocator
    spikes, cache effects at the measured size), so its allowed drop is
    widened proportionally (capped at +20 percentage points);
  * scale awareness: the committed baseline is a FULL-size run while the
    CI smoke runs --small. When the config sizes differ the comparison is
    one-sided sanity only — the small run must not be SLOWER than the
    full-size baseline (smaller working sets are strictly faster on every
    gated path, so dropping below the full-size number means a real,
    catastrophic regression) — and the report says so.

Multi-scale files: both perf_gate and index_scaling emit a "scales" array
(one block per active-set tier, each with its own config + sections). The
tiers are paired positionally — tier i of the current run against tier i
of the baseline — and each pair independently picks two-sided or one-sided
mode from its own configs, so a --small smoke (tiers 2k/6k) gates cleanly
against the full baseline (tiers 100k/1M) without tripping the small-scale
mode for the whole file. Files without "scales" (pre-multi-scale
baselines) fall back to the top-level sections only.

Asymmetry fails loudly: a gated section present in only one file, a tier
present in only one file, or a "scales" block on only one side is an exit-1
failure, never a silent skip — a harness that stops emitting a gated
metric must not pass the gate by omission.

Latency gating: sections in P99_GATED (the broker publish paths) also gate
on p99_ns — same-scale pairs allow threshold + jitter of rise, cross-scale
pairs are one-sided (a smaller run must not have a larger p99).

Absolute ratchets: the vectorized-matching PR is acceptance-gated on
stab/box_intersect throughput at the reference scale (100k actives, 4
attributes, 20k queries). Any file containing a tier at exactly that scale
— in particular the committed full-size baseline — must meet the
RATCHET_FLOORS, so the trajectory can never silently slide back below the
3x mark even if both baseline and current regress together.

Correctness is never noise: gates.oracle_divergences must be 0 in both
files, and every scale block that records scalar/SIMD checksums must have
them equal.

tcp_soak artifacts (bench == "tcp_soak") are recording-only: their
wall-clock numbers are kernel-scheduler noise (real processes, real
sockets), so nothing is perf-compared against any baseline — but the
correctness gates are still hard: gates.oracle_divergences must be 0 and
every run's gates_pass must be true, or the check exits 1.
"""

import argparse
import json
import math
import os
import sys

DEFAULT_SECTIONS = [
    "stab",
    "box_intersect",
    "insert_erase_churn_amortized",
    "broker_publish",
    "broker_publish_pipelined",
]
# Sections whose p99 latency is gated alongside throughput: same-scale
# pairs fail when current p99 rises more than threshold + jitter above the
# baseline; cross-scale pairs are one-sided (the smaller run's p99 must not
# exceed the full-size baseline's at all).
P99_GATED = {"broker_publish", "broker_publish_pipelined"}
JITTER_CAP = 0.20  # max extra allowance from latency jitter, absolute

# Minimum ops/sec at REFERENCE_SCALE. stab/box_intersect: 3x the
# pre-vectorization baseline (stab 3792.8, box_intersect 378.6 —
# BENCH_core.json as of the tiered-index PR). broker_publish_pipelined:
# 5x the sequential broker_publish baseline (1121.7) — the staged-pipeline
# PR's acceptance gate. Ratchet upward only.
RATCHET_FLOORS = {
    "stab": 11378.3,
    "box_intersect": 1135.7,
    "broker_publish_pipelined": 5608.5,
}
REFERENCE_SCALE = {"actives": 100000, "attributes": 4, "queries": 20000}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_bench: cannot read {path}: {error}")


def jitter_allowance(section):
    """Extra allowed drop derived from the baseline's own latency spread."""
    p50 = section.get("p50_ns", 0.0)
    p99 = section.get("p99_ns", 0.0)
    if p50 <= 0 or p99 <= p50:
        return 0.0
    # p99/p50 of 2 -> ~3pp, 4 -> ~6pp, 32 -> capped 20pp.
    return min(JITTER_CAP, 0.03 * math.log2(p99 / p50) / math.log2(2.0))


def same_scale_configs(base_config, cur_config):
    return all(
        base_config.get(key) == cur_config.get(key)
        for key in ("actives", "attributes", "queries", "churn_ops")
    )


def compare_sections(base_config, base_sections, cur_config, cur_sections,
                     gated, threshold, label, rows, failures):
    """Gates `gated` section names of one (baseline, current) config pair;
    missing sections only fail when absent from the CURRENT side of a
    same-name pair (harness sets may legitimately differ per tier)."""
    same_scale = same_scale_configs(base_config, cur_config)
    if not same_scale:
        print(f"check_bench: config sizes differ at {label} "
              f"(baseline actives={base_config.get('actives')}, "
              f"current actives={cur_config.get('actives')}); "
              "applying one-sided scale-aware comparison")
    for name in gated:
        base = base_sections.get(name)
        cur = cur_sections.get(name)
        if base is None or cur is None:
            failures.append(f"{label} section {name}: missing from "
                            f"{'baseline' if base is None else 'current'}")
            continue
        base_ops = base.get("ops_per_sec", 0.0)
        cur_ops = cur.get("ops_per_sec", 0.0)
        if base_ops <= 0:
            failures.append(
                f"{label} section {name}: baseline ops_per_sec is {base_ops}")
            continue
        if same_scale:
            allowed = threshold + jitter_allowance(base)
        else:
            # One-sided cross-scale mode: the smaller run must not be
            # slower than the full-size baseline AT ALL — its working set
            # is strictly smaller, so even matching the baseline already
            # signals a large real regression. No threshold slack here.
            allowed = 0.0
        floor = base_ops * (1.0 - allowed)
        ratio = cur_ops / base_ops
        verdict = "ok" if cur_ops >= floor else "REGRESSION"
        rows.append((f"{name} {label}", base_ops, cur_ops, ratio, allowed,
                     verdict))
        if cur_ops < floor:
            failures.append(
                f"{label} section {name}: {cur_ops:.1f} ops/sec is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{base_ops:.1f} (allowed {allowed * 100.0:.0f}%)")
        if name not in P99_GATED:
            continue
        base_p99 = base.get("p99_ns", 0.0)
        cur_p99 = cur.get("p99_ns", 0.0)
        if base_p99 <= 0 or cur_p99 <= 0:
            failures.append(
                f"{label} section {name}: p99_ns missing or non-positive "
                f"(baseline {base_p99}, current {cur_p99})")
            continue
        allowed_rise = threshold + jitter_allowance(base) if same_scale else 0.0
        ceiling = base_p99 * (1.0 + allowed_rise)
        p99_ratio = cur_p99 / base_p99
        p99_verdict = "ok" if cur_p99 <= ceiling else "REGRESSION"
        rows.append((f"{name} p99 {label}", base_p99, cur_p99, p99_ratio,
                     allowed_rise, p99_verdict))
        if cur_p99 > ceiling:
            failures.append(
                f"{label} section {name}: p99 {cur_p99:.1f} ns is "
                f"{(p99_ratio - 1.0) * 100.0:.1f}% above baseline "
                f"{base_p99:.1f} (allowed {allowed_rise * 100.0:.0f}%)")


def check_ratchet(config, sections, label, failures, require_all=False):
    """Absolute floors, applied to every block at exactly REFERENCE_SCALE.

    The primary sections block of a full-size run records every floored
    metric, so it is checked with require_all: a floored section going
    missing there fails loudly rather than silently un-arming its floor.
    Scale-tier blocks record only the index sections (the broker sections
    are primary-only), so floors apply to the sections a tier records.
    """
    if not all(config.get(k) == v for k, v in REFERENCE_SCALE.items()):
        return
    for name, floor in RATCHET_FLOORS.items():
        if name not in sections:
            if require_all:
                failures.append(
                    f"{label} section {name}: missing, so its absolute "
                    f"ratchet floor {floor:.1f} cannot be checked")
            continue
        ops = sections[name].get("ops_per_sec", 0.0)
        if ops < floor:
            failures.append(
                f"{label} section {name}: {ops:.1f} ops/sec is below the "
                f"absolute ratchet floor {floor:.1f} at the reference scale")


def check_checksums(blob, name, failures):
    """scalar/SIMD result checksums recorded per scale block must agree."""
    for scale in blob.get("scales", []):
        if "checksum_simd" not in scale and "checksum_scalar" not in scale:
            continue
        simd = scale.get("checksum_simd")
        scalar = scale.get("checksum_scalar")
        if simd != scalar:
            actives = scale.get("config", {}).get("actives")
            failures.append(
                f"{name} @{actives}: scalar/SIMD checksum mismatch "
                f"({simd} vs {scalar})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh perf_gate JSON")
    parser.add_argument("--baseline", default="BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max fractional ops/sec drop (default 0.30)")
    parser.add_argument("--sections", default=",".join(DEFAULT_SECTIONS),
                        help="comma-separated gated section names "
                             "(top-level sections block)")
    args = parser.parse_args()

    current = load(args.current)
    if current.get("bench") == "tcp_soak":
        # Recording-only: multi-process wall clock is scheduler noise, so
        # no baseline comparison ever — but correctness gates stay hard.
        failures = []
        divergences = current.get("gates", {}).get("oracle_divergences")
        if divergences is None:
            failures.append("current: missing gates.oracle_divergences")
        elif divergences != 0:
            failures.append(f"current: {divergences} oracle divergences")
        runs = current.get("runs", [])
        if not runs:
            failures.append("current: tcp_soak artifact has no runs")
        for run in runs:
            if not run.get("gates_pass", False):
                failures.append(
                    f"run {run.get('name')}/{run.get('seed')}: gates_pass "
                    f"false (divergences={run.get('divergences')}, "
                    f"publishes={run.get('publishes')})")
        if failures:
            print("check_bench: FAIL (tcp_soak correctness gates)")
            for failure in failures:
                print(f"  - {failure}")
            sys.exit(1)
        print(f"check_bench: tcp_soak artifact sound — {len(runs)} runs, "
              "0 oracle divergences. Recording only; TCP wall-clock is "
              "never perf-gated.")
        sys.exit(0)
    if not os.path.exists(args.baseline):
        # First run on a fresh checkout (or a new machine): nothing to gate
        # against yet. Still insist the current file is well-formed and its
        # correctness gates hold — a broken harness must not bootstrap
        # itself into a baseline — then succeed explicitly so CI treats
        # the run as "recording", not "passing by accident".
        failures = []
        divergences = current.get("gates", {}).get("oracle_divergences")
        if divergences is None:
            failures.append("current: missing gates.oracle_divergences")
        elif divergences != 0:
            failures.append(f"current: {divergences} oracle divergences")
        check_checksums(current, "current", failures)
        if failures:
            print("check_bench: FAIL (no baseline, current file unsound)")
            for failure in failures:
                print(f"  - {failure}")
            sys.exit(1)
        print(f"check_bench: no baseline at {args.baseline}; "
              "recording only, nothing gated. Commit the current JSON as "
              "the baseline to arm the gate.")
        sys.exit(0)

    baseline = load(args.baseline)

    failures = []
    for name, blob in (("baseline", baseline), ("current", current)):
        divergences = blob.get("gates", {}).get("oracle_divergences")
        if divergences is None:
            failures.append(f"{name}: missing gates.oracle_divergences")
        elif divergences != 0:
            failures.append(f"{name}: {divergences} oracle divergences")
        check_checksums(blob, name, failures)

    rows = []
    gated = [name for name in args.sections.split(",") if name]
    compare_sections(baseline.get("config", {}), baseline.get("sections", {}),
                     current.get("config", {}), current.get("sections", {}),
                     gated, args.threshold, "(primary)", rows, failures)

    # Scale tiers, paired positionally: perf_gate tiers carry
    # stab/box_intersect/churn, an index_scaling file carries its
    # match_active sections — both flow through the same comparison.
    # Asymmetry is never silently skipped: a tier or a section present on
    # one side only means the two files don't measure the same thing, and a
    # gate that quietly compares the intersection would wave through a
    # harness that stopped emitting a gated metric.
    base_scales = baseline.get("scales", [])
    cur_scales = current.get("scales", [])
    if bool(base_scales) != bool(cur_scales):
        failures.append(
            f"scales block present only in "
            f"{'baseline' if base_scales else 'current'} "
            f"({len(base_scales)} vs {len(cur_scales)} tiers)")
    if base_scales and cur_scales and len(base_scales) != len(cur_scales):
        failures.append(
            f"tier count differs (baseline {len(base_scales)}, "
            f"current {len(cur_scales)}); comparing the common prefix")
    for tier, (base, cur) in enumerate(zip(base_scales, cur_scales)):
        base_sections = base.get("sections", {})
        cur_sections = cur.get("sections", {})
        for name in sorted(set(base_sections) ^ set(cur_sections)):
            failures.append(
                f"tier {tier} section {name}: present only in "
                f"{'baseline' if name in base_sections else 'current'}")
        shared = sorted(set(base_sections) & set(cur_sections))
        if not shared:
            failures.append(f"tier {tier}: no shared sections to gate")
            continue
        compare_sections(base.get("config", {}), base_sections,
                         cur.get("config", {}), cur_sections, shared,
                         args.threshold, f"[tier {tier}]", rows, failures)

    # Absolute ratchets at the reference scale, on BOTH files (the
    # committed baseline must itself stay above the floors).
    for name, blob in (("baseline", baseline), ("current", current)):
        check_ratchet(blob.get("config", {}), blob.get("sections", {}),
                      f"{name} (primary)", failures, require_all=True)
        for scale in blob.get("scales", []):
            actives = scale.get("config", {}).get("actives")
            check_ratchet(scale.get("config", {}), scale.get("sections", {}),
                          f"{name} @{actives}", failures)

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'section':<{width}}  {'baseline':>14}  {'current':>14}  "
          f"{'ratio':>6}  {'allowed_drop':>12}  verdict")
    for name, base_ops, cur_ops, ratio, allowed, verdict in rows:
        print(f"{name:<{width}}  {base_ops:>14.1f}  {cur_ops:>14.1f}  "
              f"{ratio:>6.2f}  {allowed * 100.0:>11.0f}%  {verdict}")

    if failures:
        print("\ncheck_bench: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ncheck_bench: OK — no gated metric regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
