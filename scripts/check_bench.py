#!/usr/bin/env python3
"""Perf regression gate: compare a fresh perf_gate JSON against the
committed BENCH_core.json baseline.

Usage:
    check_bench.py CURRENT.json [--baseline BENCH_core.json]
                   [--threshold 0.30] [--sections stab,box_intersect,...]

Fails (exit 1) when any gated section's ops_per_sec drops more than
--threshold below the baseline. Two noise-tolerance mechanisms keep CI
honest without flaking:

  * jitter widening via the recorded p50/p99 latency fields: a section
    whose baseline p99/p50 ratio is large is inherently noisy (allocator
    spikes, cache effects at the measured size), so its allowed drop is
    widened proportionally (capped at +20 percentage points);
  * scale awareness: the committed baseline is a FULL-size run while the
    CI smoke runs --small. When the config sizes differ the comparison is
    one-sided sanity only — the small run must not be SLOWER than the
    full-size baseline (smaller working sets are strictly faster on every
    gated path, so dropping below the full-size number means a real,
    catastrophic regression) — and the report says so.

The gates.oracle_divergences field must be 0 in both files regardless of
timing (correctness is never noise).
"""

import argparse
import json
import math
import sys

DEFAULT_SECTIONS = [
    "stab",
    "box_intersect",
    "insert_erase_churn_amortized",
    "broker_publish",
]
JITTER_CAP = 0.20  # max extra allowance from latency jitter, absolute


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_bench: cannot read {path}: {error}")


def jitter_allowance(section):
    """Extra allowed drop derived from the baseline's own latency spread."""
    p50 = section.get("p50_ns", 0.0)
    p99 = section.get("p99_ns", 0.0)
    if p50 <= 0 or p99 <= p50:
        return 0.0
    # p99/p50 of 2 -> ~3pp, 4 -> ~6pp, 32 -> capped 20pp.
    return min(JITTER_CAP, 0.03 * math.log2(p99 / p50) / math.log2(2.0))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh perf_gate JSON")
    parser.add_argument("--baseline", default="BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max fractional ops/sec drop (default 0.30)")
    parser.add_argument("--sections", default=",".join(DEFAULT_SECTIONS),
                        help="comma-separated gated section names")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for name, blob in (("baseline", baseline), ("current", current)):
        divergences = blob.get("gates", {}).get("oracle_divergences")
        if divergences is None:
            failures.append(f"{name}: missing gates.oracle_divergences")
        elif divergences != 0:
            failures.append(f"{name}: {divergences} oracle divergences")

    base_config = baseline.get("config", {})
    cur_config = current.get("config", {})
    same_scale = all(
        base_config.get(key) == cur_config.get(key)
        for key in ("actives", "attributes", "queries", "churn_ops")
    )
    if not same_scale:
        print("check_bench: config sizes differ "
              f"(baseline actives={base_config.get('actives')}, "
              f"current actives={cur_config.get('actives')}); "
              "applying one-sided scale-aware comparison")

    base_sections = baseline.get("sections", {})
    cur_sections = current.get("sections", {})
    gated = [name for name in args.sections.split(",") if name]
    rows = []
    for name in gated:
        base = base_sections.get(name)
        cur = cur_sections.get(name)
        if base is None or cur is None:
            failures.append(f"section {name}: missing from "
                            f"{'baseline' if base is None else 'current'}")
            continue
        base_ops = base.get("ops_per_sec", 0.0)
        cur_ops = cur.get("ops_per_sec", 0.0)
        if base_ops <= 0:
            failures.append(f"section {name}: baseline ops_per_sec is {base_ops}")
            continue
        if same_scale:
            allowed = args.threshold + jitter_allowance(base)
        else:
            # One-sided cross-scale mode: the smaller run must not be
            # slower than the full-size baseline AT ALL — its working set
            # is strictly smaller, so even matching the baseline already
            # signals a large real regression. No threshold slack here.
            allowed = 0.0
        floor = base_ops * (1.0 - allowed)
        ratio = cur_ops / base_ops
        verdict = "ok" if cur_ops >= floor else "REGRESSION"
        rows.append((name, base_ops, cur_ops, ratio, allowed, verdict))
        if cur_ops < floor:
            failures.append(
                f"section {name}: {cur_ops:.1f} ops/sec is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{base_ops:.1f} (allowed {allowed * 100.0:.0f}%)")

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'section':<{width}}  {'baseline':>14}  {'current':>14}  "
          f"{'ratio':>6}  {'allowed_drop':>12}  verdict")
    for name, base_ops, cur_ops, ratio, allowed, verdict in rows:
        print(f"{name:<{width}}  {base_ops:>14.1f}  {cur_ops:>14.1f}  "
              f"{ratio:>6.2f}  {allowed * 100.0:>11.0f}%  {verdict}")

    if failures:
        print("\ncheck_bench: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ncheck_bench: OK — no gated metric regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
