#!/usr/bin/env python3
"""Fail on dead relative links in the repo's Markdown files.

Scans every tracked *.md file (or all *.md under the repo root when git is
unavailable), extracts inline links and images, and verifies that every
relative target exists on disk. External schemes (http/https/mailto) and
pure in-page anchors (#...) are skipped; a #fragment on a relative link is
stripped before the existence check.

Exit status: 0 when clean, 1 with one line per dead link otherwise.
"""

import os
import re
import subprocess
import sys

# Inline [text](target) and ![alt](target); target ends at the first
# unescaped ')' or whitespace (titles like (file.md "Title") are split off).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        files = [line for line in out.splitlines() if line.strip()]
        if files:
            return [os.path.join(root, f) for f in files]
    except (subprocess.CalledProcessError, FileNotFoundError):
        pass
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not d.startswith((".", "build"))]
        found.extend(
            os.path.join(dirpath, f) for f in filenames if f.endswith(".md")
        )
    return found


def strip_code(text):
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    root = os.path.abspath(root)
    dead = []
    for path in sorted(markdown_files(root)):
        with open(path, encoding="utf-8") as fh:
            text = strip_code(fh.read())
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if relative.startswith("/"):
                resolved = os.path.join(root, relative.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(path), relative)
            if not os.path.exists(resolved):
                dead.append(
                    f"{os.path.relpath(path, root)}: dead link -> {target}"
                )
    for line in dead:
        print(line)
    if dead:
        print(f"{len(dead)} dead link(s) found", file=sys.stderr)
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
